"""VisualQuery: edge ids by formulation sequence, connectivity rules."""

import pytest

from repro.exceptions import QueryError
from repro.query_graph import VisualQuery


@pytest.fixture
def path_query():
    q = VisualQuery()
    for i, label in enumerate("ABC"):
        q.add_node(i, label)
    q.add_edge(0, 1)
    q.add_edge(1, 2)
    return q


class TestNodes:
    def test_add_node(self):
        q = VisualQuery()
        q.add_node("n1", "C")
        assert q.node_label("n1") == "C"

    def test_add_node_idempotent(self):
        q = VisualQuery()
        q.add_node(0, "C")
        q.add_node(0, "C")

    def test_relabel_rejected(self):
        q = VisualQuery()
        q.add_node(0, "C")
        with pytest.raises(QueryError):
            q.add_node(0, "O")


class TestEdges:
    def test_ids_follow_formulation_sequence(self, path_query):
        assert path_query.edge_ids() == [1, 2]
        assert path_query.newest_edge_id == 2

    def test_ids_continue_after_deletion(self, path_query):
        path_query.add_node(3, "D")
        path_query.add_edge(2, 3)  # e3
        path_query.delete_edge(3)
        eid = path_query.add_edge(2, 3)
        assert eid == 4  # sequence numbers are never reused

    def test_add_edge_needs_nodes(self):
        q = VisualQuery()
        q.add_node(0, "A")
        with pytest.raises(QueryError):
            q.add_edge(0, 1)

    def test_no_self_loops(self):
        q = VisualQuery()
        q.add_node(0, "A")
        with pytest.raises(QueryError):
            q.add_edge(0, 0)

    def test_no_duplicate_edges(self, path_query):
        with pytest.raises(QueryError):
            path_query.add_edge(1, 0)

    def test_must_stay_connected(self):
        q = VisualQuery()
        for i in range(4):
            q.add_node(i, "A")
        q.add_edge(0, 1)
        with pytest.raises(QueryError):
            q.add_edge(2, 3)  # disconnected from the fragment

    def test_edge_accessor(self, path_query):
        u, v, label = path_query.edge(1)
        assert {u, v} == {0, 1}
        assert label is None
        with pytest.raises(QueryError):
            path_query.edge(9)


class TestDeletion:
    def test_delete_keeps_connectivity(self, path_query):
        path_query.add_node(3, "D")
        path_query.add_edge(0, 3)
        with pytest.raises(QueryError):
            path_query.delete_edge(1)  # would disconnect node 0's side

    def test_delete_leaf_edge(self, path_query):
        path_query.delete_edge(2)
        assert path_query.edge_ids() == [1]

    def test_delete_only_edge_allowed(self):
        q = VisualQuery()
        q.add_node(0, "A")
        q.add_node(1, "B")
        q.add_edge(0, 1)
        q.delete_edge(1)
        assert q.num_edges == 0

    def test_delete_missing(self, path_query):
        with pytest.raises(QueryError):
            path_query.delete_edge(99)


class TestViews:
    def test_graph_only_incident_nodes(self):
        q = VisualQuery()
        q.add_node(0, "A")
        q.add_node(1, "B")
        q.add_node(2, "C")  # dropped but never connected
        q.add_edge(0, 1)
        g = q.graph()
        assert g.num_nodes == 2
        assert not g.has_node(2)

    def test_edge_subgraph_by_ids(self, path_query):
        g = path_query.edge_subgraph_by_ids([1])
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_adjacent_edge_ids(self, path_query):
        assert path_query.adjacent_edge_ids(frozenset({1})) == {2}
        assert path_query.adjacent_edge_ids(frozenset({1, 2})) == set()

    def test_copy_independent(self, path_query):
        c = path_query.copy()
        c.delete_edge(2)
        assert path_query.num_edges == 2
        assert c.num_edges == 1
