"""Session statistics collection."""

import random

from repro.core import PragueEngine
from repro.core.statistics import collect_statistics
from repro.graph.generators import perturb_with_new_edge
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


class TestCollectStatistics:
    def test_exact_session(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        stats = collect_statistics(engine)
        assert stats.steps == 2
        assert stats.query_edges == 2
        assert not stats.similarity_mode
        assert stats.rq_trajectory == [r.rq_size for r in engine.history]
        assert len(stats.spigs) == 2
        assert stats.total_spig_vertices == engine.manager.num_vertices()
        assert stats.level_breakdown == []  # never entered similarity mode

    def test_similarity_session_breakdown(self, small_db, small_indexes):
        rng = random.Random(8)
        q0 = sample_subgraph(rng, small_db, 3, 3)
        q = perturb_with_new_edge(rng, q0, "Z")
        engine = PragueEngine(small_db, small_indexes, sigma=2)
        drive_engine(engine, q)
        engine.enable_similarity()
        stats = collect_statistics(engine)
        assert stats.similarity_mode
        assert stats.level_breakdown
        for item in stats.level_breakdown:
            assert item.total == item.free + item.ver

    def test_spig_summaries(self, small_db, small_indexes):
        g = graph_from_spec(
            {0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (2, 0)]
        )
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        stats = collect_statistics(engine)
        for summary in stats.spigs:
            assert summary.num_vertices >= 1
            assert summary.dedup_ratio >= 1.0
            spig = engine.manager.spigs[summary.edge_id]
            assert summary.num_vertices == spig.num_vertices

    def test_summary_lines_render(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        lines = collect_statistics(engine).summary_lines()
        assert any("steps: 1" in line for line in lines)
        assert any("SPIG set" in line for line in lines)

    def test_timings_accumulate(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        stats = collect_statistics(engine)
        assert stats.total_step_seconds >= stats.total_spig_seconds >= 0
