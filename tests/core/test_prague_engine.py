"""The PRAGUE engine (Algorithm 1): action flow, statuses, run paths."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.core import Action, PragueEngine, QueryStatus
from repro.exceptions import SessionError
from repro.graph.generators import (
    perturb_with_new_edge,
    random_connected_subgraph,
)
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


class TestStatusTransitions:
    def test_frequent_then_infrequent(self, small_db, small_indexes):
        """Figure 3's Status column: frequent fragments report 'frequent',
        indexed-infrequent ones 'infrequent', empty-Rq ones 'similar'."""
        engine = PragueEngine(small_db, small_indexes)
        # find a frequent single edge in the index
        labels = small_db.node_label_universe()
        found = None
        for la in labels:
            for lb in labels:
                g = graph_from_spec({0: la, 1: lb}, [(0, 1)])
                from repro.graph import canonical_code

                if small_indexes.a2f.lookup(canonical_code(g)) is not None:
                    found = (la, lb)
                    break
            if found:
                break
        assert found, "corpus must have a frequent edge"
        engine.add_node(0, found[0])
        engine.add_node(1, found[1])
        report = engine.add_edge(0, 1)
        assert report.action is Action.NEW
        assert report.status is QueryStatus.FREQUENT
        assert report.rq_size > 0

    def test_similar_status_when_rq_empties(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes, auto_similarity=False)
        engine.add_node(0, "Z")
        engine.add_node(1, "Z")
        report = engine.add_edge(0, 1)
        assert report.status is QueryStatus.SIMILAR
        assert engine.option_pending

    def test_option_pending_blocks_without_auto(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes, auto_similarity=False)
        engine.add_node(0, "Z")
        engine.add_node(1, "Z")
        engine.add_node(2, "Z")
        engine.add_edge(0, 1)
        with pytest.raises(SessionError):
            engine.add_edge(1, 2)

    def test_auto_similarity_continues(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes, auto_similarity=True)
        engine.add_node(0, "Z")
        engine.add_node(1, "Z")
        engine.add_node(2, "Z")
        engine.add_edge(0, 1)
        report = engine.add_edge(1, 2)  # implicit SimQuery
        assert engine.sim_flag
        assert report.status is QueryStatus.SIMILAR

    def test_enable_similarity_reports_candidates(self, small_db, small_indexes):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 3)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        report = engine.enable_similarity()
        assert report.action is Action.SIM_QUERY
        assert report.candidate_count is not None

    def test_status_property_tracks_history(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        assert engine.status is QueryStatus.FREQUENT  # initial
        engine.add_node(0, "Z")
        engine.add_node(1, "Z")
        engine.add_edge(0, 1)
        assert engine.status is QueryStatus.SIMILAR


class TestRunPaths:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_exact_path(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 1, 4)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        report = engine.run()
        assert report.results.exact_ids == naive_containment_search(q, small_db)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_similarity_fallback_at_run(self, seed, small_db, small_indexes):
        """Alg 1 lines 19-21: empty exact verification falls back to
        similarity search even when simFlag was never raised."""
        rng = random.Random(seed)
        q0 = sample_subgraph(rng, small_db, 2, 4)
        q = perturb_with_new_edge(rng, q0, small_db.node_label_universe())
        truth_exact = naive_containment_search(q, small_db)
        if truth_exact:
            return  # perturbation happened to match; not this test's case
        sigma = 2
        engine = PragueEngine(small_db, small_indexes, sigma=sigma)
        drive_engine(engine, q)
        report = engine.run()
        got = {m.graph_id: m.distance for m in report.results.similar}
        assert got == naive_similarity_search(q, small_db, sigma)

    def test_run_empty_query_rejected(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        with pytest.raises(SessionError):
            engine.run()

    def test_verification_free_flag(self, small_db, small_indexes):
        """Indexed query fragments skip the isomorphism test at Run."""
        rng = random.Random(3)
        for _ in range(20):
            q = sample_subgraph(rng, small_db, 2, 2)
            engine = PragueEngine(small_db, small_indexes)
            drive_engine(engine, q)
            target = engine.manager.target_vertex(engine.query)
            report = engine.run()
            assert report.verification_free == target.fragment_list.is_indexed

    def test_similarity_results_ordered(self, small_db, small_indexes):
        rng = random.Random(4)
        q0 = sample_subgraph(rng, small_db, 3, 3)
        q = perturb_with_new_edge(rng, q0, "Z")
        engine = PragueEngine(small_db, small_indexes, sigma=2)
        drive_engine(engine, q)
        report = engine.run()
        distances = [m.distance for m in report.results.similar]
        assert distances == sorted(distances)


class TestBookkeeping:
    def test_history_records_steps(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        assert len(engine.history) == 2
        assert all(r.action is Action.NEW for r in engine.history)
        assert all(r.processing_seconds >= 0 for r in engine.history)
        assert all(r.spig_seconds >= 0 for r in engine.history)

    def test_step_reports_candidate_counts(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, g)
        assert engine.history[-1].rq_size == len(engine.rq)
