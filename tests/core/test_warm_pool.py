"""The warm verification pool and the arena plane, end to end.

Lifecycle (spawn once, reuse, respawn on reconfigure/TTL/breakage), the
candidate-count floor, arena invalidation on ``db.add()``, the postmortem
rate limiter, and the answer-invariance acceptance sweep: serial, warm pool,
cold pool and arena-off must return byte-identical results — through plain
``verify_batch`` calls and through the differential oracle's full-session
replays.
"""

import os
import time
import warnings
from unittest import mock

import pytest

import repro.core.pool as pool_mod
import repro.core.verification as verif
from repro import obs
from repro.core.verification import sim_verify_scan, verify_batch
from repro.datasets import generate_aids_like
from repro.graph.generators import random_connected_subgraph
from repro.obs.recorder import RECORDER
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import OracleConfig, replay_trace
from repro.testing import small_database


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    """Every test starts and ends poolless, with a low dispatch floor."""
    monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")
    pool_mod.shutdown()
    yield
    pool_mod.shutdown()


@pytest.fixture(scope="module")
def corpus():
    return generate_aids_like(60, seed=11)


def _query(db, seed, edges=4):
    import random

    rng = random.Random(seed)
    while True:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            return sub


class TestWarmPoolLifecycle:
    def test_second_dispatch_reuses_the_pool(self, corpus):
        query = _query(corpus, seed=1)
        ids = list(corpus.ids())
        with obs.trace():
            first = verify_batch(query, ids, corpus, workers=2)
            second = verify_batch(query, ids, corpus, workers=2)
            counters = obs.full_snapshot()["counters"]
        assert first == second
        assert counters.get("verify.pool.spawns", 0) == 1
        assert counters.get("verify.pool.reuses", 0) == 1

    def test_worker_count_change_respawns(self, corpus):
        query = _query(corpus, seed=2)
        ids = list(corpus.ids())
        with obs.trace():
            verify_batch(query, ids, corpus, workers=2)
            verify_batch(query, ids, corpus, workers=3)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.pool.spawns", 0) == 2
        assert counters.get("verify.pool.respawns", 0) == 1

    def test_idle_ttl_recycles_the_pool(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_TTL", "0.01")
        query = _query(corpus, seed=3)
        ids = list(corpus.ids())
        with obs.trace():
            verify_batch(query, ids, corpus, workers=2)
            time.sleep(0.05)
            verify_batch(query, ids, corpus, workers=2)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.pool.expired", 0) == 1
        assert counters.get("verify.pool.spawns", 0) == 2

    def test_ttl_zero_disables_expiry(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_TTL", "0")
        query = _query(corpus, seed=3)
        ids = list(corpus.ids())
        with obs.trace():
            verify_batch(query, ids, corpus, workers=2)
            time.sleep(0.02)
            verify_batch(query, ids, corpus, workers=2)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.pool.expired", 0) == 0
        assert counters.get("verify.pool.reuses", 0) == 1

    def test_broken_pool_is_respawned_on_next_dispatch(self, corpus):
        ids = list(range(32))
        with pytest.warns(RuntimeWarning, match="serial"):
            out = verif._run_batch(
                _identity_worker,
                lambda chunk: (chunk, lambda g: g),  # lambda: unpicklable
                ids,
                workers=2,
            )
        assert out == ids
        # The failed dispatch tore the pool down; the next one respawns
        # cleanly and succeeds without a fallback.
        query = _query(corpus, seed=4)
        with obs.trace():
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                pooled = verify_batch(
                    query, list(corpus.ids()), corpus, workers=2
                )
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.pool.fallbacks", 0) == 0
        assert pooled == verify_batch(
            query, list(corpus.ids()), corpus, workers=1
        )

    def test_shutdown_unlinks_published_arenas(self, corpus):
        from multiprocessing import shared_memory

        query = _query(corpus, seed=5)
        verify_batch(query, list(corpus.ids()), corpus, workers=2)
        arena = pool_mod.arena_for(corpus)
        if arena is None:
            pytest.skip("shared memory unavailable on this platform")
        name = arena.publish()
        pool_mod.shutdown()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestDispatchFloor:
    def test_small_batches_stay_serial(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "1000")
        query = _query(corpus, seed=6)
        with obs.trace():
            verify_batch(query, list(corpus.ids()), corpus, workers=4)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.serial", 0) == 1
        assert counters.get("verify.pool.runs", 0) == 0

    def test_floor_is_inclusive_below(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")
        query = _query(corpus, seed=6)
        with obs.trace():
            verify_batch(query, list(corpus.ids())[:15], corpus, workers=4)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.serial", 0) == 1
        assert counters.get("verify.pool.runs", 0) == 0


class TestArenaPlane:
    def test_db_add_invalidates_the_arena(self):
        db = small_database(seed=21, num_graphs=20)
        first = pool_mod.arena_for(db)
        if first is None:
            pytest.skip("shared memory unavailable on this platform")
        version = first.version
        assert pool_mod.arena_for(db) is first  # stable while db is stable
        db.add(db[0].copy())
        second = pool_mod.arena_for(db)
        assert second is not first
        assert second.version != version
        pool_mod.shutdown()

    def test_arena_disabled_by_env(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "0")
        assert pool_mod.arena_for(corpus) is None

    def test_rebuild_after_db_add_keeps_index_plane(self):
        """Regression: invalidation used to pop the plane registration, so
        the rebuilt arena shipped without A2F/A2I tables."""
        from repro.config import MiningParams
        from repro.index import build_indexes

        db = small_database(seed=22, num_graphs=20)
        indexes = build_indexes(
            db, MiningParams(min_support=0.2, size_threshold=3,
                             max_fragment_edges=4)
        )
        pool_mod.register_index_plane(db, indexes)
        first = pool_mod.arena_for(db)
        if first is None:
            pytest.skip("shared memory unavailable on this platform")
        assert first.has_section("a2f")
        db.add(db[0].copy())
        second = pool_mod.arena_for(db)
        assert second is not first
        assert second.has_section("a2f")
        pool_mod.shutdown()

    def test_resolve_distinguishes_mismatch_from_missing_attach(
        self, monkeypatch
    ):
        """Regression: a stale forked worker's version mismatch used to be
        reported as 'worker initializer failed?'."""
        class _Stub:
            version = "stale-version"

            def items(self, ids):  # pragma: no cover - never reached
                raise AssertionError

        payload = (pool_mod.ARENA_REF, "fresh-version", [1, 2])
        monkeypatch.setattr(pool_mod, "_WORKER_ARENA", _Stub())
        with obs.trace():
            with pytest.raises(RuntimeError, match="version mismatch"):
                pool_mod.resolve_items(payload)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("arena.version_mismatch", 0) == 1

        monkeypatch.setattr(pool_mod, "_WORKER_ARENA", None)
        with pytest.raises(RuntimeError, match="no arena attached"):
            pool_mod.resolve_items(payload)


class TestAnswerInvariance:
    @pytest.mark.parametrize("env", [
        {},                                            # warm pool + arena
        {"REPRO_POOL_WARM": "0"},                      # cold pool + arena
        {"REPRO_ARENA": "0"},                          # warm pool, inline
        {"REPRO_POOL_WARM": "0", "REPRO_ARENA": "0"},  # the historical path
    ])
    def test_verify_batch_matches_serial(self, corpus, monkeypatch, env):
        for key, value in env.items():
            monkeypatch.setenv(key, value)
        query = _query(corpus, seed=7)
        ids = list(corpus.ids())
        serial = verify_batch(query, ids, corpus, workers=1)
        pooled = verify_batch(query, ids, corpus, workers=4)
        assert pooled == serial

    def test_sim_verify_scan_matches_serial(self, corpus):
        fragments = [_query(corpus, seed=s, edges=3) for s in (8, 9)]
        ids = list(corpus.ids())
        serial = sim_verify_scan(fragments, ids, corpus, workers=1)
        pooled = sim_verify_scan(fragments, ids, corpus, workers=4)
        assert pooled == serial

    @pytest.mark.parametrize("arena,warm", [
        (True, False), (False, True), (False, False),
    ])
    def test_oracle_replay_divergence_free(self, arena, warm):
        """Full-session acceptance: arena on/off × warm/cold replays of the
        same trace are observation-identical to the serial reference."""
        trace = generate_trace(seed=13)
        reference = replay_trace(trace, OracleConfig(workers=1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            cell = replay_trace(
                trace,
                OracleConfig(workers=4, arena=arena, warm_pool=warm),
            )
        divergence = first_divergence(
            reference.observations, cell.observations,
            "workers=1", cell.config.name,
        )
        assert divergence is None


class TestPostmortemRateLimit:
    def test_one_bundle_per_exception_type(self, tmp_path):
        verif.reset_postmortem_limiter()
        RECORDER.force(True)
        RECORDER.reset()
        try:
            with mock.patch.dict(
                os.environ, {"REPRO_POSTMORTEM_DIR": str(tmp_path)}
            ):
                for _ in range(3):
                    with pytest.warns(RuntimeWarning, match="serial"):
                        verif._run_batch(
                            _identity_worker,
                            lambda chunk: (chunk, lambda g: g),
                            list(range(32)),
                            workers=2,
                        )
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        assert len(list(tmp_path.glob("postmortem-*.json"))) == 1

    def test_unwritten_bundle_does_not_consume_the_slot(self, tmp_path):
        verif.reset_postmortem_limiter()
        RECORDER.force(True)
        RECORDER.reset()
        try:
            # First fallback: no dir configured, nothing written...
            with mock.patch.dict(os.environ, {"REPRO_POSTMORTEM_DIR": ""}):
                with pytest.warns(RuntimeWarning, match="serial"):
                    verif._run_batch(
                        _identity_worker,
                        lambda chunk: (chunk, lambda g: g),
                        list(range(16)),
                        workers=2,
                    )
            # ...so the same exception type still dumps once a dir exists.
            with mock.patch.dict(
                os.environ, {"REPRO_POSTMORTEM_DIR": str(tmp_path)}
            ):
                with pytest.warns(RuntimeWarning, match="serial"):
                    verif._run_batch(
                        _identity_worker,
                        lambda chunk: (chunk, lambda g: g),
                        list(range(16)),
                        workers=2,
                    )
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        assert len(list(tmp_path.glob("postmortem-*.json"))) == 1

    def test_reset_reopens_the_slot(self, tmp_path):
        verif.reset_postmortem_limiter()
        RECORDER.force(True)
        RECORDER.reset()
        try:
            with mock.patch.dict(
                os.environ, {"REPRO_POSTMORTEM_DIR": str(tmp_path)}
            ):
                for _ in range(2):
                    verif.reset_postmortem_limiter()
                    with pytest.warns(RuntimeWarning, match="serial"):
                        verif._run_batch(
                            _identity_worker,
                            lambda chunk: (chunk, lambda g: g),
                            list(range(16)),
                            workers=2,
                        )
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        assert len(list(tmp_path.glob("postmortem-*.json"))) == 2


def _identity_worker(payload):
    chunk, transform = payload
    return [transform(gid) for gid in chunk]
