"""Algorithms 4 and 5: candidate buckets, Lemma 2, ranked results vs oracle."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_similarity_search
from repro.core.similar import similar_results_gen, similar_sub_candidates
from repro.graph import is_subgraph_isomorphic, mccs_size
from repro.graph.generators import (
    perturb_with_new_edge,
    random_connected_subgraph,
)
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, sample_subgraph


def _state(indexes, g, order=None):
    query = VisualQuery()
    for node in g.nodes():
        query.add_node(node, g.label(node))
    manager = SpigManager(indexes)
    for u, v in (order or connected_order(g)):
        eid = query.add_edge(u, v, g.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return query, manager


def _query(seed, db, lo=3, hi=5, perturb=0.5):
    rng = random.Random(seed)
    q = sample_subgraph(rng, db, lo, hi)
    if rng.random() < perturb:
        q = perturb_with_new_edge(rng, q, db.node_label_universe())
    return q, rng.randint(1, 3)


class TestAlgorithm4:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_buckets_disjoint_per_level(self, seed, small_db, small_indexes):
        q, sigma = _query(seed, small_db)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, sigma, manager, small_indexes, frozenset(small_db.ids())
        )
        for level in cands.levels():
            assert not (cands.free_at(level) & cands.ver_at(level))

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_rfree_is_verification_free(self, seed, small_db, small_indexes):
        """Every Rfree(i) graph provably contains an i-edge query subgraph."""
        q, sigma = _query(seed, small_db)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, sigma, manager, small_indexes, frozenset(small_db.ids())
        )
        for level in cands.levels():
            for gid in cands.free_at(level):
                g = small_db[gid]
                assert mccs_size(q, g) >= level

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_candidates_complete(self, seed, small_db, small_indexes):
        """Rfree ∪ Rver covers every true similarity answer."""
        q, sigma = _query(seed, small_db)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, sigma, manager, small_indexes, frozenset(small_db.ids())
        )
        truth = naive_similarity_search(q, small_db, sigma)
        assert set(truth) <= cands.all_candidates()

    def test_sigma_zero_top_level_only(self, small_db, small_indexes):
        q, _ = _query(3, small_db, perturb=0.0)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, 0, manager, small_indexes, frozenset(small_db.ids())
        )
        assert cands.levels() == [query.num_edges]


class TestLemma2:
    def test_candidate_set_sequence_invariant(self, small_db, small_indexes):
        """Lemma 2 corollary: Rcand(i) = Rcand(j) for any two sequences."""
        q, sigma = _query(17, small_db, perturb=1.0)
        base_order = connected_order(q)
        # Two different drawable sequences: default and reversed-suffix.
        alt = list(base_order)
        alt.reverse()
        # make alt drawable: greedy reconnect
        from repro.datasets.queries import connected_edge_order

        rng = random.Random(99)
        alt_order = connected_edge_order(q, rng)
        results = []
        for order in (base_order, alt_order):
            query, manager = _state(small_indexes, q, order=order)
            cands = similar_sub_candidates(
                query, sigma, manager, small_indexes, frozenset(small_db.ids())
            )
            results.append(cands.all_candidates())
        assert results[0] == results[1]


class TestAlgorithm5:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_results_match_oracle(self, seed, small_db, small_indexes):
        q, sigma = _query(seed, small_db)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, sigma, manager, small_indexes, frozenset(small_db.ids())
        )
        matches = similar_results_gen(query, cands, sigma, manager, small_db)
        got = {m.graph_id: m.distance for m in matches}
        assert got == naive_similarity_search(q, small_db, sigma)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_ranking_rule(self, seed, small_db, small_indexes):
        """dist(g1,q) < dist(g2,q) implies Rank(g1) < Rank(g2)."""
        q, sigma = _query(seed, small_db)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, sigma, manager, small_indexes, frozenset(small_db.ids())
        )
        matches = similar_results_gen(query, cands, sigma, manager, small_db)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_exact_match_ranked_at_distance_zero(self, small_db, small_indexes):
        """With include_exact_level, contained queries surface at dist 0."""
        q, _ = _query(23, small_db, perturb=0.0)
        query, manager = _state(small_indexes, q)
        cands = similar_sub_candidates(
            query, 2, manager, small_indexes, frozenset(small_db.ids()),
            include_exact_level=True,
        )
        matches = similar_results_gen(query, cands, 2, manager, small_db)
        exact_ids = {
            gid for gid, g in small_db.items() if is_subgraph_isomorphic(q, g)
        }
        zero_ranked = {m.graph_id for m in matches if m.distance == 0}
        assert zero_ranked == exact_ids
