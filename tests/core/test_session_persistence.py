"""Session save/resume across engine instances."""

import random

import pytest

from repro.baselines.naive import naive_containment_search
from repro.config import MiningParams
from repro.core import PragueEngine
from repro.core.persistence import load_session, save_session
from repro.exceptions import SessionError
from repro.index import build_indexes
from repro.testing import (
    connected_order,
    drive_engine,
    sample_subgraph,
    small_database,
)


class TestSaveLoad:
    def test_resume_and_finish(self, small_db, small_indexes, tmp_path):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 4)
        engine = PragueEngine(small_db, small_indexes)
        for n in q.nodes():
            engine.add_node(n, q.label(n))
        order = connected_order(q)
        for u, v in order[:-1]:
            engine.add_edge(u, v)
        path = tmp_path / "half-done.session"
        written = save_session(engine, small_db, path)
        assert written == path.stat().st_size

        resumed = load_session(path, small_db, small_indexes)
        assert resumed.query.num_edges == len(order) - 1
        assert len(resumed.history) == len(order) - 1
        resumed.add_edge(*order[-1])  # finish the drawing
        res = resumed.run()
        assert res.results.exact_ids == naive_containment_search(q, small_db)

    def test_candidate_state_preserved(self, small_db, small_indexes, tmp_path):
        rng = random.Random(2)
        q = sample_subgraph(rng, small_db, 2, 3)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        path = tmp_path / "s.session"
        save_session(engine, small_db, path)
        resumed = load_session(path, small_db, small_indexes)
        assert resumed.rq == engine.rq
        assert resumed.sim_flag == engine.sim_flag
        assert resumed.manager.num_vertices() == engine.manager.num_vertices()

    def test_original_engine_unaffected_by_save(
        self, small_db, small_indexes, tmp_path
    ):
        rng = random.Random(3)
        q = sample_subgraph(rng, small_db, 2, 3)
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, q)
        save_session(engine, small_db, tmp_path / "s.session")
        # engine still usable after the snapshotting save
        res = engine.run()
        assert res.results.exact_ids == naive_containment_search(q, small_db)


class TestValidation:
    def test_wrong_database_rejected(self, small_db, small_indexes, tmp_path):
        engine = PragueEngine(small_db, small_indexes)
        engine.add_node(0, "A")
        path = tmp_path / "s.session"
        save_session(engine, small_db, path)
        other_db = small_database(seed=99, num_graphs=10)
        other_idx = build_indexes(other_db, MiningParams(0.3, 2, 3))
        with pytest.raises(SessionError):
            load_session(path, other_db, other_idx)

    def test_garbage_file_rejected(self, small_db, small_indexes, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a session")
        with pytest.raises(SessionError):
            load_session(path, small_db, small_indexes)

    def test_non_session_pickle_rejected(self, small_db, small_indexes, tmp_path):
        import pickle

        path = tmp_path / "other.pkl"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(SessionError):
            load_session(path, small_db, small_indexes)

    def test_missing_file_rejected(self, small_db, small_indexes, tmp_path):
        with pytest.raises(SessionError):
            load_session(tmp_path / "absent", small_db, small_indexes)
