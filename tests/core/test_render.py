"""Text and DOT rendering of graphs, SPIGs and result panels."""

import random

from repro.core import PragueEngine
from repro.core.results import QueryResults, SimilarityMatch
from repro.graph import Graph
from repro.render import (
    graph_to_dot,
    graph_to_text,
    match_to_dot,
    mccs_highlight,
    results_to_text,
    spig_to_dot,
    spig_to_text,
)
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


class TestTextRendering:
    def test_graph_to_text(self):
        g = graph_from_spec({0: "C", 1: "O"}, [(0, 1)])
        text = graph_to_text(g, title="mol:")
        assert "mol:" in text
        assert "C(0) - O(1)" in text

    def test_graph_to_text_edge_labels(self):
        g = Graph()
        g.add_node(0, "C")
        g.add_node(1, "O")
        g.add_edge(0, 1, "double")
        assert "-[double]-" in graph_to_text(g)

    def test_empty_graph(self):
        assert graph_to_text(Graph()) == "(empty graph)"

    def test_results_exact(self):
        results = QueryResults(exact_ids=[3, 1, 4])
        text = results_to_text(results)
        assert "3 exact matches" in text

    def test_results_similar_ranked(self):
        results = QueryResults(similar=[
            SimilarityMatch(distance=2, graph_id=7, verification_free=False),
            SimilarityMatch(distance=1, graph_id=3, verification_free=True),
        ])
        text = results_to_text(results)
        assert text.index("#3") < text.index("#7")  # more similar first
        assert "verification-free" in text

    def test_results_empty(self):
        assert results_to_text(QueryResults()) == "no matches"

    def test_results_limit(self):
        results = QueryResults(similar=[
            SimilarityMatch(distance=1, graph_id=i, verification_free=False)
            for i in range(15)
        ])
        assert "5 more" in results_to_text(results, limit=10)


class TestSpigRendering:
    def _engine(self, db, indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = PragueEngine(db, indexes)
        drive_engine(engine, g)
        return engine

    def test_spig_to_text(self, small_db, small_indexes):
        engine = self._engine(small_db, small_indexes)
        spig = engine.manager.spigs[2]
        text = spig_to_text(spig)
        assert "SPIG S2" in text
        assert "level 1" in text
        assert "level 2" in text

    def test_spig_to_dot(self, small_db, small_indexes):
        engine = self._engine(small_db, small_indexes)
        dot = spig_to_dot(engine.manager.spigs[2])
        assert dot.startswith('digraph "S2"')
        assert "rank=same" in dot
        assert dot.rstrip().endswith("}")


class TestDotRendering:
    def test_graph_to_dot_structure(self):
        g = graph_from_spec({0: "C", 1: "O"}, [(0, 1)])
        dot = graph_to_dot(g, name="mol")
        assert dot.startswith('graph "mol"')
        assert 'n0 [label="C"]' in dot
        assert "n0 -- n1" in dot

    def test_highlighting(self):
        g = graph_from_spec({0: "C", 1: "O", 2: "N"}, [(0, 1), (1, 2)])
        dot = graph_to_dot(g, highlight_nodes=[0, 1],
                           highlight_edges=[(0, 1)])
        assert 'fillcolor="gold"' in dot
        assert 'color="red"' in dot

    def test_edge_labels_rendered(self):
        g = Graph()
        g.add_node(0, "C")
        g.add_node(1, "C")
        g.add_edge(0, 1, "s")
        assert 'label="s"' in graph_to_dot(g)


class TestMccsHighlight:
    def test_highlight_found(self, small_db):
        rng = random.Random(0)
        q = sample_subgraph(rng, small_db, 3, 3)
        base = None
        for gid, g in small_db.items():
            from repro.graph import is_subgraph_isomorphic

            if is_subgraph_isomorphic(q, g):
                base = g
                break
        assert base is not None
        nodes, edges = mccs_highlight(q, base, q.num_edges)
        assert len(edges) == q.num_edges
        assert all(base.has_edge(u, v) for u, v in edges)
        assert set(nodes) == {n for e in edges for n in e}

    def test_highlight_absent(self):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        g = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert mccs_highlight(q, g, 1) == ([], [])

    def test_match_to_dot(self, small_db):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 3)
        match = SimilarityMatch(distance=1, graph_id=0, verification_free=False)
        dot = match_to_dot(q, small_db, match)
        assert dot.startswith('graph "match_0_dist1"')
