"""Batch verification: pool size never affects results (determinism guard).

``verify_batch``/``sim_verify_scan`` with ``workers=1`` (serial, pool-free)
must return exactly the same id sets as any ``workers=N`` run on the same
seeded AIDS-like corpus — parallelism is a wall-clock knob only.
"""

import random

import pytest

from repro.baselines.naive import naive_containment_search
from repro.core.verification import (
    exact_verification,
    sim_verify_scan,
    verify_batch,
)
from repro.datasets import generate_aids_like
from repro.graph.generators import random_connected_subgraph


@pytest.fixture(scope="module")
def aids_corpus():
    return generate_aids_like(80, seed=7)


def _queries(db, count, rng, edges=4):
    out = []
    while len(out) < count:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            out.append(sub)
    return out


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_verify_batch_pool_matches_serial(self, aids_corpus, workers):
        db = aids_corpus
        rng = random.Random(2012)
        all_ids = list(db.ids())
        for query in _queries(db, 3, rng):
            serial = verify_batch(query, all_ids, db, workers=1)
            pooled = verify_batch(query, all_ids, db, workers=workers)
            assert pooled == serial
            assert serial == naive_containment_search(query, db)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_sim_verify_scan_pool_matches_serial(self, aids_corpus, workers):
        db = aids_corpus
        rng = random.Random(99)
        fragments = _queries(db, 3, rng, edges=3)
        all_ids = list(db.ids())
        serial = sim_verify_scan(fragments, all_ids, db, workers=1)
        pooled = sim_verify_scan(fragments, all_ids, db, workers=workers)
        assert pooled == serial

    def test_exact_verification_routes_through_batch(self, aids_corpus):
        db = aids_corpus
        rng = random.Random(5)
        query = _queries(db, 1, rng)[0]
        candidates = frozenset(db.ids())
        serial = exact_verification(query, candidates, db,
                                    verification_free=False, workers=1)
        pooled = exact_verification(query, candidates, db,
                                    verification_free=False, workers=2)
        assert pooled == serial == naive_containment_search(query, db)

    def test_verification_free_skips_vf2(self, aids_corpus):
        ids = frozenset([5, 1, 9])
        out = exact_verification(None, ids, aids_corpus,
                                 verification_free=True)
        assert out == [1, 5, 9]


class TestBatchEdgeCases:
    def test_empty_candidate_set(self, aids_corpus):
        rng = random.Random(11)
        query = _queries(aids_corpus, 1, rng)[0]
        assert verify_batch(query, [], aids_corpus, workers=4) == []
        assert sim_verify_scan([query], [], aids_corpus, workers=4) == set()

    def test_no_fragments_means_no_matches(self, aids_corpus):
        ids = list(aids_corpus.ids())[:10]
        assert sim_verify_scan([], ids, aids_corpus, workers=2) == set()

    def test_result_sorted_and_unique(self, aids_corpus):
        rng = random.Random(21)
        query = _queries(aids_corpus, 1, rng)[0]
        ids = list(aids_corpus.ids())
        # Duplicated, shuffled input ids must not duplicate output ids.
        messy = ids + ids[: len(ids) // 2]
        rng.shuffle(messy)
        out = verify_batch(query, set(messy), aids_corpus, workers=3)
        assert out == sorted(set(out))
        assert out == verify_batch(query, ids, aids_corpus, workers=1)
