"""Query modification (Algorithm 6): suggestions and deletion semantics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PragueEngine, apply_deletion, deletable_edges, suggest_deletion
from repro.exceptions import QueryError
from repro.graph.generators import (
    perturb_with_new_edge,
    random_connected_subgraph,
)
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


def _engine_with(db, indexes, g, **kw):
    engine = PragueEngine(db, indexes, **kw)
    drive_engine(engine, g)
    return engine


class TestDeletableEdges:
    def test_cycle_all_deletable(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "A", 2: "A"}, [(0, 1), (1, 2), (2, 0)])
        engine = _engine_with(small_db, small_indexes, g)
        assert deletable_edges(engine.query) == [1, 2, 3]

    def test_path_middle_not_deletable(self, small_db, small_indexes):
        g = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "A"}, [(0, 1), (1, 2), (2, 3)]
        )
        engine = _engine_with(small_db, small_indexes, g)
        # drawing order is connected, so edge ids 1..3 along the path; only
        # the two end edges keep the query connected when removed
        dels = deletable_edges(engine.query)
        assert len(dels) == 2

    def test_single_edge_deletable(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = _engine_with(small_db, small_indexes, g)
        assert deletable_edges(engine.query) == [1]


class TestSuggestion:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_suggestion_maximises_candidates(self, seed, small_db, small_indexes):
        """The suggested edge yields the largest Rq' among legal deletions."""
        rng = random.Random(seed)
        q0 = sample_subgraph(rng, small_db, 2, 4)
        q = perturb_with_new_edge(rng, q0, small_db.node_label_universe())
        engine = _engine_with(small_db, small_indexes, q)
        suggestion = suggest_deletion(
            engine.query, engine.manager, small_indexes, engine.db_ids
        )
        assert suggestion is not None
        from repro.core import exact_sub_candidates

        ids = engine.query.edge_id_set()
        for eid in deletable_edges(engine.query):
            rest = ids - {eid}
            if not rest:
                continue
            vertex = engine.manager.vertex_for(rest)
            rq = exact_sub_candidates(vertex, small_indexes, engine.db_ids)
            assert len(rq) <= len(suggestion.candidates)

    def test_apply_deletion_validates_membership(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = _engine_with(small_db, small_indexes, g)
        with pytest.raises(QueryError):
            apply_deletion(engine.query, engine.manager, 42)

    def test_apply_deletion_rejects_disconnecting(self, small_db, small_indexes):
        g = graph_from_spec(
            {0: "A", 1: "A", 2: "A", 3: "A"}, [(0, 1), (1, 2), (2, 3)]
        )
        engine = _engine_with(small_db, small_indexes, g)
        middle = [
            eid for eid in engine.query.edge_ids()
            if eid not in deletable_edges(engine.query)
        ]
        assert middle
        with pytest.raises(QueryError):
            apply_deletion(engine.query, engine.manager, middle[0])


class TestEngineModification:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_delete_then_run_equals_fresh(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 5)
        engine = _engine_with(small_db, small_indexes, q)
        dels = deletable_edges(engine.query)
        engine.delete_edge(dels[rng.randrange(len(dels))])
        res = engine.run()
        fresh = PragueEngine(small_db, small_indexes)
        drive_engine(fresh, engine.query.graph())
        fres = fresh.run()
        assert res.results.exact_ids == fres.results.exact_ids
        assert [
            (m.graph_id, m.distance) for m in res.results.similar
        ] == [(m.graph_id, m.distance) for m in fres.results.similar]

    def test_accepted_suggestion_restores_candidates(self, small_db, small_indexes):
        from repro.testing import connected_order

        rng = random.Random(5)
        q0 = sample_subgraph(rng, small_db, 3, 3)
        q = perturb_with_new_edge(rng, q0, "Z")  # provably unmatched edge
        engine = PragueEngine(small_db, small_indexes, auto_similarity=False)
        for node in q.nodes():
            engine.add_node(node, q.label(node))
        z_edge = next(
            e for e in q.edges() if "Z" in (q.label(e[0]), q.label(e[1]))
        )
        for u, v in connected_order(q0):
            engine.add_edge(u, v)
        engine.add_edge(*z_edge)  # the bold step: Rq empties here
        assert engine.option_pending
        report = engine.delete_edge()  # accept the suggestion
        assert report.suggestion is not None
        assert engine.rq  # the suggestion removed the foreign-label edge

    def test_delete_only_edge_resets(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = _engine_with(small_db, small_indexes, g)
        engine.delete_edge(1)
        assert engine.query.num_edges == 0
        assert engine.manager.num_vertices() == 0
