"""ExactSubCandidates (Algorithm 3): exactness for indexed fragments,
sound supersets for NIFs, sound emptiness."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_containment_search
from repro.core import exact_sub_candidates
from repro.graph.generators import (
    perturb_with_new_edge,
    random_connected_graph,
    random_connected_subgraph,
)
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, graph_from_spec, sample_subgraph


def _target(indexes, g):
    query = VisualQuery()
    for node in g.nodes():
        query.add_node(node, g.label(node))
    manager = SpigManager(indexes)
    for u, v in connected_order(g):
        eid = query.add_edge(u, v, g.edge_label(u, v))
        manager.on_new_edge(query, eid)
    return manager.target_vertex(query)


class TestSoundness:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=30, deadline=None)
    def test_superset_of_true_answers(self, seed, small_db, small_indexes):
        """Rq ⊇ fsgIds(q): no exact match is ever pruned away."""
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 1, 5)
        if rng.random() < 0.4:
            q = perturb_with_new_edge(rng, q, "ABC")
        vertex = _target(small_indexes, q)
        rq = exact_sub_candidates(vertex, small_indexes, frozenset(small_db.ids()))
        truth = set(naive_containment_search(q, small_db))
        assert truth <= set(rq)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=30, deadline=None)
    def test_exact_for_indexed_fragments(self, seed, small_db, small_indexes):
        """Frequent fragments and DIFs have verification-free candidates."""
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 1, 4)
        vertex = _target(small_indexes, q)
        if not vertex.fragment_list.is_indexed:
            return
        rq = exact_sub_candidates(vertex, small_indexes, frozenset(small_db.ids()))
        assert set(rq) == set(naive_containment_search(q, small_db))


class TestDegenerateCases:
    def test_foreign_label_single_edge_empty(self, small_db, small_indexes):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        vertex = _target(small_indexes, q)
        rq = exact_sub_candidates(vertex, small_indexes, frozenset(small_db.ids()))
        assert rq == frozenset()

    def test_foreign_label_bigger_fragment_empty(self, small_db, small_indexes):
        q = graph_from_spec({0: "A", 1: "Z", 2: "A"}, [(0, 1), (1, 2)])
        vertex = _target(small_indexes, q)
        rq = exact_sub_candidates(vertex, small_indexes, frozenset(small_db.ids()))
        assert rq == frozenset()

    def test_in_universe_nonoccurring_pair_is_dif_backed(
        self, small_db, small_indexes
    ):
        """Every in-universe label pair is covered by A2F or A2I, so the
        fragment list of a single edge is always indexed or dead."""
        labels = small_db.node_label_universe()
        for la in labels:
            for lb in labels:
                q = graph_from_spec({0: la, 1: lb}, [(0, 1)])
                vertex = _target(small_indexes, q)
                assert vertex.fragment_list.is_indexed
