"""Regression tests for the correctness bugs flushed out by the oracle
harness (ISSUE 2): the empty AND-fold neutral element, the stale ``db_ids``
snapshot, ``sim_verify`` vs ``sim_verify_scan`` matcher parity, pool-failure
fallback in ``_run_batch``, and the SRT accounting of the implicit
``enable_similarity`` inside ``add_edge``.

Each test fails on the pre-fix tree (see docs/CORRECTNESS.md for the
oracle-to-regression-test workflow these came out of).
"""

import random
import types
import warnings

import pytest

from repro.config import MiningParams
from repro.core import candidates as cand
from repro.core import verification as verif
from repro.core.actions import Action
from repro.core.prague import PragueEngine
from repro.core.statistics import collect_statistics
from repro.core.verification import sim_verify, sim_verify_scan
from repro.graph.database import GraphDatabase
from repro.index.builder import build_indexes
from repro.query_graph import VisualQuery
from repro.spig import SpigManager
from repro.testing import connected_order, graph_from_spec, sample_subgraph


def _path(n, label="A"):
    """An n-node single-label path graph."""
    return graph_from_spec(
        {i: label for i in range(n)}, [(i, i + 1) for i in range(n - 1)]
    )


# ----------------------------------------------------------------------
# 1. intersect_all([]) — the AND-fold over zero constraints
# ----------------------------------------------------------------------
class TestEmptyIntersection:
    def test_zero_constraints_yield_the_universe(self):
        universe = cand.full_mask(7)
        assert cand.intersect_all([], universe) == universe
        assert cand.intersect_all([], universe=0) == 0
        assert cand.intersect_all(iter(()), universe) == universe

    def test_nonempty_fold_is_unchanged_by_universe(self):
        masks = [cand.bits_of({1, 2, 3}), cand.bits_of({2, 3, 4})]
        assert cand.intersect_all(masks, cand.full_mask(64)) == cand.bits_of(
            {2, 3}
        )
        assert cand.intersect_all(masks) == cand.bits_of({2, 3})

    def test_matches_frozenset_reference_semantics(self):
        """The bitset fold and the frozenset fold agree on the neutral
        element: intersecting no constraint sets leaves every graph a
        candidate, exactly like the ``db_ids`` fallback of the reference
        path in exact.py."""
        db_ids = frozenset(range(9))
        via_sets = frozenset.intersection(db_ids)  # fold seeded with universe
        via_bits = cand.ids_of(cand.intersect_all([], cand.bits_of(db_ids)))
        assert via_bits == via_sets


# ----------------------------------------------------------------------
# 2. stale db_ids snapshot in PragueEngine
# ----------------------------------------------------------------------
class TestDatabaseGrowthMidSession:
    """Graphs appended between formulation steps must become visible.

    The corpus and mining bound are chosen so the query falls through to the
    no-index-information path (``Rq = db_ids``): uniform labels, fragments
    mined only up to 2 edges, a 4-edge query.  Pre-fix, ``db_ids`` was
    snapshotted in ``__init__`` and the appended graph could never enter any
    candidate set or result.
    """

    def _setup(self):
        db = GraphDatabase([_path(n) for n in (3, 4, 5, 6, 3, 4, 5, 6)])
        params = MiningParams(
            min_support=0.3, size_threshold=2, max_fragment_edges=2
        )
        indexes = build_indexes(db, params)
        return db, indexes

    def test_appended_graph_enters_rq(self):
        db, indexes = self._setup()
        engine = PragueEngine(db, indexes, sigma=0)
        for i in range(5):
            engine.add_node(i, "A")
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
        engine.add_edge(2, 3)
        new_gid = db.add(_path(6))  # appended mid-session
        report = engine.add_edge(3, 4)  # 4-edge path: Rq = db_ids fallback
        assert new_gid in engine.rq
        assert report.rq_size == len(db)

    def test_appended_graph_reaches_run_results(self):
        db, indexes = self._setup()
        engine = PragueEngine(db, indexes, sigma=0)
        for i in range(5):
            engine.add_node(i, "A")
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
        engine.add_edge(2, 3)
        new_gid = db.add(_path(7))
        engine.add_edge(3, 4)
        result = engine.run()
        assert new_gid in result.results.exact_ids

    def test_append_after_last_edge_is_seen_by_run(self):
        """Run re-checks the database version, not just the last refresh."""
        db, indexes = self._setup()
        engine = PragueEngine(db, indexes, sigma=0)
        for i in range(5):
            engine.add_node(i, "A")
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
        engine.add_edge(2, 3)
        engine.add_edge(3, 4)
        new_gid = db.add(_path(7))  # appended after the final edge
        result = engine.run()
        assert new_gid in result.results.exact_ids


# ----------------------------------------------------------------------
# 3. sim_verify must exercise the same matcher as sim_verify_scan
# ----------------------------------------------------------------------
class TestSimVerifyMatcherParity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_spot_check_agrees_with_batch_scan(
        self, seed, small_db, small_indexes
    ):
        """Per-graph sim_verify (corpus statistics supplied) must equal
        membership in the batch sim_verify_scan answer for every graph."""
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 5)
        query = VisualQuery()
        for node in q.nodes():
            query.add_node(node, q.label(node))
        manager = SpigManager(small_indexes)
        for u, v in connected_order(q):
            eid = query.add_edge(u, v, q.edge_label(u, v))
            manager.on_new_edge(query, eid)
        label_freq = small_db.label_frequencies()
        for level in range(1, query.num_edges + 1):
            vertices = list(manager.vertices_at_level(level))
            if not vertices:
                continue
            scanned = sim_verify_scan(
                [v.fragment for v in vertices], small_db.ids(), small_db,
                workers=1,
            )
            for gid, g in small_db.items():
                assert sim_verify(vertices, g, label_freq=label_freq) == (
                    gid in scanned
                )

    def test_empty_vertex_list(self, small_db):
        assert not sim_verify([], small_db[0])


# ----------------------------------------------------------------------
# 4. _run_batch pool failure falls back to the serial path
# ----------------------------------------------------------------------
def _chunk_len_worker(payload):
    """Module-level (hence picklable) worker used by the fallback tests."""
    chunk, transform = payload
    return [transform(gid) for gid in chunk]


class TestRunBatchFallback:
    def test_unpicklable_payload_falls_back_serially(self):
        ids = list(range(64))
        with pytest.warns(RuntimeWarning, match="serial"):
            out = verif._run_batch(
                _chunk_len_worker,
                lambda chunk: (chunk, lambda gid: gid),  # lambda: unpicklable
                ids,
                workers=4,
            )
        assert out == ids

    def test_picklable_payload_does_not_warn(self):
        ids = list(range(64))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = verif._run_batch(
                _chunk_len_worker,
                lambda chunk: (chunk, int),
                ids,
                workers=2,
            )
        assert out == ids

    def test_verify_batch_still_correct_with_pool(self, small_db):
        pattern = sample_subgraph(random.Random(7), small_db, 1, 2)
        serial = verif.verify_batch(pattern, small_db.ids(), small_db, workers=1)
        pooled = verif.verify_batch(pattern, small_db.ids(), small_db, workers=3)
        assert serial == pooled


# ----------------------------------------------------------------------
# 5. SRT accounting of the implicit enable_similarity inside add_edge
# ----------------------------------------------------------------------
class _TickClock:
    """Deterministic perf_counter: each call advances exactly one second."""

    def __init__(self):
        self.now = 0.0

    def perf_counter(self):
        self.now += 1.0
        return self.now


def _patch_engine_clock(monkeypatch, clock):
    """Tick the clock for the engine's reads only.

    ``repro.core.prague`` resolves ``time.perf_counter`` through its module
    global, so swapping that one reference isolates the tick accounting from
    every *other* instrumented module (recorder, histograms, index lookups)
    that shares the real stdlib ``time``.
    """
    monkeypatch.setattr(
        "repro.core.prague.time",
        types.SimpleNamespace(perf_counter=clock.perf_counter),
    )


class TestImplicitSimilarityTiming:
    def _dead_edge_engine(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes, auto_similarity=True)
        engine.add_node("x", "ZZ-unseen")  # label absent from the corpus
        engine.add_node("y", "ZZ-unseen")
        engine.add_node("z", "ZZ-unseen")
        engine.add_edge("x", "y")  # dead fragment: Rq empty, dialogue pops
        assert engine.option_pending
        return engine

    def test_implicit_sim_report_precedes_edge_report(
        self, small_db, small_indexes
    ):
        engine = self._dead_edge_engine(small_db, small_indexes)
        engine.add_edge("y", "z")
        assert [r.action for r in engine.history] == [
            Action.NEW, Action.SIM_QUERY, Action.NEW,
        ]
        assert engine.sim_flag and not engine.option_pending

    def test_edge_timing_excludes_the_implicit_similarity(
        self, small_db, small_indexes, monkeypatch
    ):
        engine = self._dead_edge_engine(small_db, small_indexes)
        clock = _TickClock()
        _patch_engine_clock(monkeypatch, clock)
        engine.add_edge("y", "z")
        sim_report = engine.history[-2]
        edge_report = engine.history[-1]
        assert sim_report.action is Action.SIM_QUERY
        # enable_similarity reads the clock twice: 1 tick of processing.
        assert sim_report.processing_seconds == pytest.approx(1.0)
        # add_edge reads it four times after the dialogue resolved: its
        # window (3 ticks) starts after the similarity window closed —
        # neither double-counted nor dropped.
        assert edge_report.processing_seconds == pytest.approx(3.0)
        assert edge_report.spig_seconds == pytest.approx(1.0)

    def test_session_totals_count_each_report_once(
        self, small_db, small_indexes, monkeypatch
    ):
        engine = self._dead_edge_engine(small_db, small_indexes)
        clock = _TickClock()
        _patch_engine_clock(monkeypatch, clock)
        start = clock.now
        engine.add_edge("y", "z")
        elapsed = clock.now - start
        stats = collect_statistics(engine)
        new_work = sum(
            r.processing_seconds for r in engine.history[-2:]
        )
        # Every tick of the gesture is attributed to exactly one report
        # (the two timing windows are disjoint), minus the 2 unattributed
        # reads that delimit the windows themselves.
        assert new_work == pytest.approx(elapsed - 2.0)
        assert stats.total_step_seconds == pytest.approx(
            sum(r.processing_seconds for r in engine.history)
        )
