"""Result containers: SimilarCandidates and QueryResults semantics."""

from repro.core.results import QueryResults, SimilarCandidates, SimilarityMatch


class TestSimilarCandidates:
    def test_levels_union_of_buckets(self):
        c = SimilarCandidates()
        c.free[5] = {1, 2}
        c.ver[4] = {3}
        assert c.levels() == [4, 5]

    def test_all_candidates_union(self):
        c = SimilarCandidates()
        c.free[5] = {1, 2}
        c.ver[5] = {3}
        c.ver[4] = {2, 4}
        assert c.all_candidates() == {1, 2, 3, 4}
        assert c.candidate_count == 4

    def test_accessors_default_empty(self):
        c = SimilarCandidates()
        assert c.free_at(9) == set()
        assert c.ver_at(9) == set()

    def test_empty(self):
        c = SimilarCandidates()
        assert c.levels() == []
        assert c.candidate_count == 0


class TestSimilarityMatch:
    def test_ordering_by_distance_then_id(self):
        matches = [
            SimilarityMatch(distance=2, graph_id=1, verification_free=False),
            SimilarityMatch(distance=1, graph_id=9, verification_free=True),
            SimilarityMatch(distance=1, graph_id=3, verification_free=False),
        ]
        ranked = sorted(matches)
        assert [(m.distance, m.graph_id) for m in ranked] == [
            (1, 3), (1, 9), (2, 1)
        ]

    def test_verification_flag_not_in_ordering(self):
        a = SimilarityMatch(distance=1, graph_id=1, verification_free=True)
        b = SimilarityMatch(distance=1, graph_id=1, verification_free=False)
        assert a == b  # compare= excludes the flag

    def test_rank_key(self):
        m = SimilarityMatch(distance=2, graph_id=7, verification_free=False)
        assert m.rank_key == (2, 7)


class TestQueryResults:
    def test_exact_results(self):
        r = QueryResults(exact_ids=[1, 2])
        assert r.is_exact
        assert not r.is_empty

    def test_similar_results_ordering_helper(self):
        r = QueryResults(similar=[
            SimilarityMatch(distance=2, graph_id=5, verification_free=False),
            SimilarityMatch(distance=1, graph_id=8, verification_free=False),
        ])
        assert r.ordered_similar_ids() == [8, 5]
        assert not r.is_exact
        assert not r.is_empty

    def test_empty(self):
        r = QueryResults()
        assert r.is_empty
        assert r.ordered_similar_ids() == []
