"""The rank-ordered streaming form of Algorithm 5."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PragueEngine
from repro.core.similar import (
    iter_similar_results,
    similar_results_gen,
    similar_sub_candidates,
)
from repro.graph.generators import perturb_with_new_edge
from repro.testing import drive_engine, sample_subgraph


def _prepare(db, indexes, seed, sigma=2):
    rng = random.Random(seed)
    q0 = sample_subgraph(rng, db, 3, 4)
    q = perturb_with_new_edge(rng, q0, db.node_label_universe())
    engine = PragueEngine(db, indexes, sigma=sigma)
    drive_engine(engine, q)
    candidates = similar_sub_candidates(
        engine.query, sigma, engine.manager, indexes, engine.db_ids
    )
    return engine, candidates, sigma


class TestStreaming:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=15, deadline=None)
    def test_stream_equals_materialised(self, seed, small_db, small_indexes):
        engine, candidates, sigma = _prepare(small_db, small_indexes, seed)
        streamed = list(iter_similar_results(
            engine.query, candidates, sigma, engine.manager, small_db
        ))
        materialised = similar_results_gen(
            engine.query, candidates, sigma, engine.manager, small_db
        )
        assert streamed == materialised

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=15, deadline=None)
    def test_stream_is_rank_ordered(self, seed, small_db, small_indexes):
        engine, candidates, sigma = _prepare(small_db, small_indexes, seed)
        keys = [
            (m.distance, m.graph_id)
            for m in iter_similar_results(
                engine.query, candidates, sigma, engine.manager, small_db
            )
        ]
        assert keys == sorted(keys)

    def test_stream_is_lazy(self, small_db, small_indexes):
        """Pulling the first match must not force later levels' verification."""
        engine, candidates, sigma = _prepare(small_db, small_indexes, 5)
        iterator = iter_similar_results(
            engine.query, candidates, sigma, engine.manager, small_db
        )
        first = next(iterator, None)
        # either empty overall or a valid first match; no exception = lazy OK
        if first is not None:
            assert first.distance >= 0

    def test_no_duplicate_graph_ids(self, small_db, small_indexes):
        engine, candidates, sigma = _prepare(small_db, small_indexes, 11)
        ids = [
            m.graph_id
            for m in iter_similar_results(
                engine.query, candidates, sigma, engine.manager, small_db
            )
        ]
        assert len(ids) == len(set(ids))
