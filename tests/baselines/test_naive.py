"""The naive oracle itself, checked against first principles."""

import random

from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.graph import is_subgraph_isomorphic, subgraph_distance
from repro.testing import graph_from_spec, sample_subgraph


class TestContainment:
    def test_matches_definition(self, small_db):
        rng = random.Random(0)
        q = sample_subgraph(rng, small_db, 2, 3)
        out = naive_containment_search(q, small_db)
        for gid in small_db.ids():
            assert (gid in out) == is_subgraph_isomorphic(q, small_db[gid])

    def test_sorted_output(self, small_db):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 1, 2)
        out = naive_containment_search(q, small_db)
        assert out == sorted(out)

    def test_unmatched_query(self, small_db):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        assert naive_containment_search(q, small_db) == []


class TestSimilarity:
    def test_matches_definition(self, small_db):
        rng = random.Random(2)
        q = sample_subgraph(rng, small_db, 3, 4)
        sigma = 2
        out = naive_similarity_search(q, small_db, sigma)
        for gid in list(small_db.ids())[:10]:
            dist = subgraph_distance(q, small_db[gid])
            if dist <= sigma and dist < q.num_edges:
                assert out[gid] == dist
            else:
                assert gid not in out

    def test_sigma_zero_equals_containment(self, small_db):
        rng = random.Random(3)
        q = sample_subgraph(rng, small_db, 2, 3)
        sim = naive_similarity_search(q, small_db, 0)
        assert sorted(sim) == naive_containment_search(q, small_db)
        assert all(d == 0 for d in sim.values())

    def test_graphs_sharing_no_edge_excluded(self, small_db):
        q = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        assert naive_similarity_search(q, small_db, 0) == {}
