"""GBLENDER's replay machinery in isolation."""

import random

from repro.baselines import GBlenderEngine
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


class TestConnectedReplayOrder:
    def test_prefixes_connected_after_any_deletion(self, small_db, small_indexes):
        """The replay order must keep every prefix connected, even when the
        deleted edge bridged an early prefix."""
        # star + closure drawn so e1 bridges the early prefix:
        # e1=(a,b), e2=(b,c), e3=(a,d), e4=(d,c); deleting e1 leaves
        # {e2,e3,e4} connected, but the naive prefix {e2,e3} is not.
        g = graph_from_spec(
            {"a": "A", "b": "B", "c": "A", "d": "B"},
            [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")],
        )
        engine = GBlenderEngine(small_db, small_indexes)
        for n in g.nodes():
            engine.add_node(n, g.label(n))
        for u, v in [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]:
            engine.add_edge(u, v)
        engine.query.delete_edge(1)
        order = engine._connected_replay_order()
        assert sorted(order) == [2, 3, 4]
        seen = []
        for eid in order:
            seen.append(eid)
            assert engine.query.edge_subgraph_by_ids(seen).is_connected()

    def test_empty_query(self, small_db, small_indexes):
        engine = GBlenderEngine(small_db, small_indexes)
        assert engine._connected_replay_order() == []

    def test_earliest_first_when_possible(self, small_db, small_indexes):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 4)
        engine = GBlenderEngine(small_db, small_indexes)
        drive_engine(engine, q)
        order = engine._connected_replay_order()
        assert order[0] == min(engine.query.edge_id_set())
