"""The count-based (real Grafil) feature index and filter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FeatureIndex
from repro.baselines.counting_features import (
    CountingFeatureIndex,
    CountingGrafilSearch,
)
from repro.baselines.naive import naive_similarity_search
from repro.graph import count_embeddings
from repro.graph.generators import perturb_with_new_edge
from repro.testing import sample_subgraph


@pytest.fixture(scope="module")
def counting(small_db, small_indexes):
    return CountingFeatureIndex(
        small_db, small_indexes.frequent, max_feature_edges=3, count_cap=4
    )


class TestCountingIndex:
    def test_counts_capped_and_exact_below_cap(self, counting, small_db,
                                               small_indexes):
        checked = 0
        for code, frag in small_indexes.frequent.items():
            if frag.size > 3 or checked > 15:
                continue
            for gid in list(frag.fsg_ids)[:3]:
                true_count = count_embeddings(frag.graph, small_db[gid])
                got = counting.count_in(code, gid)
                assert got == min(true_count, 4)
                checked += 1
        assert checked > 0

    def test_absent_pair_is_zero(self, counting):
        assert counting.count_in((("nope",),), 0) == 0

    def test_graphs_with_matches_presence(self, counting, small_db,
                                          small_indexes):
        presence = FeatureIndex(small_db, small_indexes.frequent, 3)
        for code in list(small_indexes.frequent)[:20]:
            if small_indexes.frequent[code].size > 3:
                continue
            assert counting.graphs_with(code) == set(
                presence.graphs_with(code)
            )

    def test_counting_index_larger_than_presence(self, counting, small_db,
                                                 small_indexes):
        presence = FeatureIndex(small_db, small_indexes.frequent, 3)
        assert counting.size_bytes() > presence.size_bytes()


class TestCountingGrafil:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=12, deadline=None)
    def test_filter_sound(self, seed, counting, small_db):
        search = CountingGrafilSearch(small_db, counting)
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 5)
        if rng.random() < 0.6:
            q = perturb_with_new_edge(rng, q, small_db.node_label_universe())
        sigma = rng.randint(1, 2)
        truth = set(naive_similarity_search(q, small_db, sigma))
        assert truth <= search.candidates(q, sigma)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=8, deadline=None)
    def test_matches_oracle(self, seed, counting, small_db):
        search = CountingGrafilSearch(small_db, counting)
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 4)
        sigma = rng.randint(1, 2)
        outcome = search.search(q, sigma)
        assert set(outcome.matches) == set(
            naive_similarity_search(q, small_db, sigma)
        )

    def test_counts_prune_at_least_as_much_as_presence(
        self, counting, small_db, small_indexes
    ):
        """The count bound subsumes the presence bound on average: over a
        small query sample, counting candidates are never dramatically more
        numerous than presence candidates."""
        from repro.baselines import GrafilSearch

        presence = GrafilSearch(
            small_db, FeatureIndex(small_db, small_indexes.frequent, 3)
        )
        count_based = CountingGrafilSearch(small_db, counting)
        rng = random.Random(7)
        total_presence = total_count = 0
        for _ in range(6):
            q = perturb_with_new_edge(
                rng, sample_subgraph(rng, small_db, 3, 4),
                small_db.node_label_universe(),
            )
            total_presence += len(presence.candidates(q, 1))
            total_count += len(count_based.candidates(q, 1))
        assert total_count <= total_presence * 1.5
