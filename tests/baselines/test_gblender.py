"""GBLENDER baseline: exact blending, empty-on-similarity, replay costs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GBlenderEngine
from repro.baselines.naive import naive_containment_search
from repro.core.modify import deletable_edges
from repro.exceptions import SessionError
from repro.graph.generators import perturb_with_new_edge
from repro.testing import drive_engine, graph_from_spec, sample_subgraph


class TestExactSearch:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_oracle(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 1, 5)
        engine = GBlenderEngine(small_db, small_indexes)
        drive_engine(engine, q)
        results, _ = engine.run()
        assert results == naive_containment_search(q, small_db)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_rq_superset_each_step(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 2, 4)
        engine = GBlenderEngine(small_db, small_indexes)
        for node in q.nodes():
            engine.add_node(node, q.label(node))
        from repro.testing import connected_order

        drawn = []
        for u, v in connected_order(q):
            drawn.append((u, v))
            engine.add_edge(u, v)
            prefix = q.edge_subgraph(drawn)
            truth = set(naive_containment_search(prefix, small_db))
            assert truth <= set(engine.rq)

    def test_empty_results_for_similarity_query(self, small_db, small_indexes):
        """The limitation PRAGUE fixes: no exact match -> empty, no fallback."""
        rng = random.Random(4)
        q0 = sample_subgraph(rng, small_db, 3, 3)
        q = perturb_with_new_edge(rng, q0, "Z")
        engine = GBlenderEngine(small_db, small_indexes)
        drive_engine(engine, q)
        results, _ = engine.run()
        assert results == []

    def test_run_empty_query_rejected(self, small_db, small_indexes):
        with pytest.raises(SessionError):
            GBlenderEngine(small_db, small_indexes).run()


class TestModificationReplay:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_replay_restores_correct_state(self, seed, small_db, small_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 5)
        engine = GBlenderEngine(small_db, small_indexes)
        drive_engine(engine, q)
        dels = deletable_edges(engine.query)
        cost = engine.delete_edge(dels[rng.randrange(len(dels))])
        assert cost >= 0.0
        results, _ = engine.run()
        assert set(results) == set(
            naive_containment_search(engine.query.graph(), small_db)
        )

    def test_delete_only_edge(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        engine = GBlenderEngine(small_db, small_indexes)
        drive_engine(engine, g)
        engine.delete_edge(1)
        assert engine.query.num_edges == 0
        assert engine.rq == frozenset()

    def test_history_records_steps(self, small_db, small_indexes):
        g = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        engine = GBlenderEngine(small_db, small_indexes)
        steps = drive_engine(engine, g)
        assert [s.edge_id for s in steps] == [1, 2]
        assert all(s.processing_seconds >= 0 for s in steps)
