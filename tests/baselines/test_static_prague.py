"""The static (non-blended) PRAGUE mode — ablation A5's control arm."""

import random

from repro.baselines.naive import naive_containment_search
from repro.baselines.static_prague import static_prague_search
from repro.core import PragueEngine, formulate
from repro.datasets import spec_from_graph
from repro.testing import sample_subgraph


class TestStaticPrague:
    def test_same_answers_as_blended(self, small_db, small_indexes):
        rng = random.Random(1)
        q = sample_subgraph(rng, small_db, 3, 4)
        spec = spec_from_graph("static", q)
        report, srt = static_prague_search(small_db, small_indexes, spec, 2)
        assert srt >= 0
        engine = PragueEngine(small_db, small_indexes, sigma=2)
        trace = formulate(engine, spec, edge_latency=2.0)
        assert report.results.exact_ids == trace.results.exact_ids
        assert [(m.graph_id, m.distance) for m in report.results.similar] == [
            (m.graph_id, m.distance) for m in trace.results.similar
        ]

    def test_matches_oracle(self, small_db, small_indexes):
        rng = random.Random(2)
        q = sample_subgraph(rng, small_db, 2, 4)
        spec = spec_from_graph("static", q)
        report, _ = static_prague_search(small_db, small_indexes, spec, 1)
        assert report.results.exact_ids == naive_containment_search(q, small_db)

    def test_static_srt_covers_all_processing(self, small_db, small_indexes):
        """The static SRT includes the per-step work a blended run hides."""
        rng = random.Random(3)
        q = sample_subgraph(rng, small_db, 3, 5)
        spec = spec_from_graph("static", q)
        report, static_srt = static_prague_search(
            small_db, small_indexes, spec, 2
        )
        assert static_srt >= report.processing_seconds
