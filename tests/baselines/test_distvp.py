"""DistVP: q-grams, the σ-dependent index, budgeted builds, oracle agreement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DistVpIndex, DistVpIndexError, DistVpSearch
from repro.baselines.distvp import path_qgrams
from repro.baselines.naive import naive_similarity_search
from repro.graph.generators import perturb_with_new_edge, random_connected_graph
from repro.testing import graph_from_spec, sample_subgraph


class TestQgrams:
    def test_single_edge_path(self):
        g = graph_from_spec({0: "A", 1: "B"}, [(0, 1)])
        grams = path_qgrams(g, 3)
        assert grams == {"A|-|B"}

    def test_orientation_normalised(self):
        g = graph_from_spec({0: "C", 1: "A", 2: "B"}, [(0, 1), (1, 2)])
        grams = path_qgrams(g, 2)
        # the 2-edge path appears once, under the lexicographically
        # smaller orientation
        assert "B|-|A|-|C" in grams

    def test_length_cap(self):
        g = graph_from_spec(
            {i: "A" for i in range(5)}, [(i, i + 1) for i in range(4)]
        )
        grams = path_qgrams(g, 2)
        assert all(gram.count("|") <= 4 for gram in grams)

    def test_subgraph_grams_subset(self, small_db):
        rng = random.Random(0)
        q = sample_subgraph(rng, small_db, 2, 3)
        base = small_db[0]
        # grams of a subgraph of `base` are a subset of grams of `base`
        sub = sample_subgraph(rng, small_db, 1, 2)
        full = path_qgrams(small_db[0], 3)
        # use an actual subgraph of graph 0:
        from repro.graph.generators import random_connected_subgraph

        sub0 = random_connected_subgraph(rng, base, min(2, base.num_edges))
        assert path_qgrams(sub0, 3) <= full

    def test_budget_abort(self):
        rng = random.Random(1)
        labels = [f"L{i}" for i in range(20)]
        g = random_connected_graph(rng, 14, 40, labels)
        with pytest.raises(DistVpIndexError):
            path_qgrams(g, 6, cap=10)


class TestIndex:
    def test_grows_with_sigma(self, small_db):
        sizes = [DistVpIndex(small_db, s).size_bytes() for s in (1, 2, 3)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_rejects_sigma_zero(self, small_db):
        with pytest.raises(ValueError):
            DistVpIndex(small_db, 0)

    def test_budget_aborts_build(self, small_db):
        with pytest.raises(DistVpIndexError):
            DistVpIndex(small_db, 3, max_paths_per_graph=2)


class TestSearch:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=12, deadline=None)
    def test_matches_oracle(self, seed, small_db):
        rng = random.Random(seed)
        q = sample_subgraph(rng, small_db, 3, 4)
        if rng.random() < 0.5:
            q = perturb_with_new_edge(rng, q, small_db.node_label_universe())
        sigma = rng.randint(1, 2)
        index = DistVpIndex(small_db, sigma)
        search = DistVpSearch(small_db, index)
        outcome = search.search(q, sigma)
        assert set(outcome.matches) == set(
            naive_similarity_search(q, small_db, sigma)
        )

    def test_sigma_bigger_than_index_rejected(self, small_db):
        index = DistVpIndex(small_db, 1)
        search = DistVpSearch(small_db, index)
        q = graph_from_spec({0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            search.candidates(q, 2)

    def test_sigma_covering_whole_query(self, small_db):
        """|q| ≤ σ degenerates to the whole database as candidates."""
        index = DistVpIndex(small_db, 2)
        search = DistVpSearch(small_db, index)
        q = graph_from_spec({0: "A", 1: "A"}, [(0, 1)])
        assert search.candidates(q, 2) == set(small_db.ids())
