"""The shared GR/SG feature index."""

import random

import pytest

from repro.baselines import FeatureIndex
from repro.graph import canonical_code, is_subgraph_isomorphic
from repro.testing import sample_subgraph


@pytest.fixture(scope="module")
def findex(medium_db, medium_indexes):
    return FeatureIndex(medium_db, medium_indexes.frequent, max_feature_edges=3)


class TestIndex:
    def test_only_small_features(self, findex, medium_indexes):
        expected = sum(
            1 for f in medium_indexes.frequent.values() if f.size <= 3
        )
        assert len(findex) == expected

    def test_presence_lists_exact(self, findex, medium_db, medium_indexes):
        for code, frag in list(medium_indexes.frequent.items())[:20]:
            if frag.size > 3:
                continue
            assert findex.graphs_with(code) == frag.fsg_ids

    def test_unknown_feature_empty(self, findex):
        assert findex.graphs_with((("nope",),)) == frozenset()

    def test_size_bytes_positive(self, findex):
        assert findex.size_bytes() > 0


class TestQueryFeatures:
    def test_features_occur_in_query(self, findex, medium_db):
        rng = random.Random(1)
        q = sample_subgraph(rng, medium_db, 3, 5)
        for feature in findex.query_features(q):
            assert feature.code in findex
            for edge_set in feature.edge_sets:
                sub = q.edge_subgraph(edge_set)
                assert canonical_code(sub) == feature.code
                assert len(edge_set) == feature.size

    def test_touched_edges_union(self, findex, medium_db):
        rng = random.Random(2)
        q = sample_subgraph(rng, medium_db, 3, 4)
        for feature in findex.query_features(q):
            union = set()
            for es in feature.edge_sets:
                union |= es
            assert feature.touched_edges == union

    def test_feature_sizes_capped(self, findex, medium_db):
        rng = random.Random(3)
        q = sample_subgraph(rng, medium_db, 4, 6)
        assert all(f.size <= 3 for f in findex.query_features(q))
