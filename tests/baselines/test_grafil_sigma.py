"""Grafil and SIGMA: filter soundness and oracle agreement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FeatureIndex, GrafilSearch, SigmaSearch
from repro.baselines.naive import naive_similarity_search
from repro.graph.generators import perturb_with_new_edge
from repro.testing import sample_subgraph


@pytest.fixture(scope="module")
def systems(medium_db, medium_indexes):
    index = FeatureIndex(medium_db, medium_indexes.frequent, max_feature_edges=3)
    return medium_db, GrafilSearch(medium_db, index), SigmaSearch(medium_db, index)


def _query(db, seed):
    rng = random.Random(seed)
    q = sample_subgraph(rng, db, 3, 5)
    if rng.random() < 0.6:
        q = perturb_with_new_edge(rng, q, db.node_label_universe())
    return q, rng.randint(1, 2)


class TestGrafil:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_filter_sound(self, seed, systems):
        """No true similarity answer is ever filtered out."""
        db, grafil, _ = systems
        q, sigma = _query(db, seed)
        truth = set(naive_similarity_search(q, db, sigma))
        assert truth <= grafil.candidates(q, sigma)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_oracle(self, seed, systems):
        db, grafil, _ = systems
        q, sigma = _query(db, seed)
        outcome = grafil.search(q, sigma)
        assert set(outcome.matches) == set(naive_similarity_search(q, db, sigma))

    def test_outcome_timing_fields(self, systems):
        db, grafil, _ = systems
        q, sigma = _query(db, 7)
        outcome = grafil.search(q, sigma)
        assert outcome.filter_seconds >= 0
        assert outcome.verify_seconds >= 0
        assert outcome.total_seconds == pytest.approx(
            outcome.filter_seconds + outcome.verify_seconds
        )
        assert outcome.candidate_count == len(outcome.candidates)


class TestSigma:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_filter_sound(self, seed, systems):
        db, _, sigma_sys = systems
        q, sigma = _query(db, seed)
        truth = set(naive_similarity_search(q, db, sigma))
        assert truth <= sigma_sys.candidates(q, sigma)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_oracle(self, seed, systems):
        db, _, sigma_sys = systems
        q, sigma = _query(db, seed)
        outcome = sigma_sys.search(q, sigma)
        assert set(outcome.matches) == set(naive_similarity_search(q, db, sigma))

    def test_disjoint_packing_bound(self):
        from repro.baselines.features import QueryFeature
        from repro.baselines.sigma import _disjoint_packing_bound

        f1 = QueryFeature(code=("a",), size=1, edge_sets=(frozenset({(0, 1)}),))
        f2 = QueryFeature(code=("b",), size=1, edge_sets=(frozenset({(2, 3)}),))
        f3 = QueryFeature(code=("c",), size=1, edge_sets=(frozenset({(0, 1), (2, 3)}),))
        assert _disjoint_packing_bound([f1, f2]) == 2  # edge-disjoint pair
        assert _disjoint_packing_bound([f1, f3]) == 1  # overlap blocks packing
