"""The combined evaluation report renderer."""

import json

import pytest

from repro.bench.report import ascii_bar, render_report
from repro.cli import main


class TestAsciiBar:
    def test_full_bar(self):
        assert ascii_bar(10, 10, width=20) == "#" * 20

    def test_half_bar(self):
        assert ascii_bar(5, 10, width=20) == "#" * 10

    def test_zero_max(self):
        assert ascii_bar(5, 0) == ""

    def test_clamped(self):
        assert ascii_bar(50, 10, width=10) == "#" * 10


class TestRenderReport:
    def test_empty_results_dir(self, tmp_path):
        text = render_report(tmp_path)
        assert "no benchmark results found" in text

    def test_with_synthetic_results(self, tmp_path):
        (tmp_path / "table2_index_size.json").write_text(json.dumps({
            "db_size": 100,
            "dvp_mb": {"1": 2.0, "2": 4.0, "3": 6.0, "4": 8.0},
            "prg_mb": 1.0,
            "sg_gr_mb": 0.5,
        }))
        (tmp_path / "table2_index_size.md").write_text(
            "```\nTable II: demo\n====\nx | y\n```\n"
        )
        text = render_report(tmp_path)
        assert "Index sizes (MB)" in text
        assert "DVP s=4" in text
        assert "Table II: demo" in text

    def test_srt_chart(self, tmp_path):
        (tmp_path / "fig9_srt.json").write_text(json.dumps({
            "Q1/sigma1": {"PRG": 0.1, "GR": 1.0, "SG": 0.8},
            "Q1/sigma2": {"PRG": 0.2, "GR": 2.0, "SG": 1.5},
        }))
        text = render_report(tmp_path)
        assert "Total similarity SRT" in text
        # PRG total (0.3) should be listed before GR (3.0): ascending order
        assert text.index("PRG") < text.index("GR")

    def test_unknown_sections_appended(self, tmp_path):
        (tmp_path / "custom_bench.json").write_text("{}")
        (tmp_path / "custom_bench.md").write_text("```\nCustom\n```")
        assert "Custom" in render_report(tmp_path)


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        rc = main(["report", "--results", str(tmp_path)])
        assert rc == 0
        assert "no benchmark results found" in capsys.readouterr().out

    def test_report_against_repo_results(self, capsys):
        rc = main(["report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PRAGUE reproduction" in out
