"""Reproduce the *shape* of the paper's Figure 3 walkthrough.

Sequence 1 of Figure 3: the user draws C-C (frequent), a later step turns the
fragment infrequent, then a step empties ``Rq`` (Status "Similar"), and Run
performs verification returning approximate matches.  We build a small
molecular corpus engineered to produce exactly this status progression: the
bold step draws an S-S bond, which never occurs in the corpus and is
therefore a support-0 DIF — the A2I probe proves emptiness instantly.
"""

import pytest

from repro.config import MiningParams
from repro.core import PragueEngine, QueryStatus
from repro.graph import GraphDatabase
from repro.index import build_indexes
from repro.testing import graph_from_spec


@pytest.fixture(scope="module")
def chem():
    """12 graphs: C-C everywhere (frequent), C-S in a minority (infrequent
    but matched), S-S nowhere (a support-0 DIF)."""
    graphs = []
    for _ in range(8):  # pure carbon chains
        graphs.append(
            graph_from_spec(
                {0: "C", 1: "C", 2: "C", 3: "C"}, [(0, 1), (1, 2), (2, 3)]
            )
        )
    for _ in range(4):  # a sulfur pendant on the middle carbon
        graphs.append(
            graph_from_spec(
                {0: "C", 1: "C", 2: "C", 3: "S"}, [(0, 1), (1, 2), (1, 3)]
            )
        )
    db = GraphDatabase(graphs)
    indexes = build_indexes(db, MiningParams(min_support=0.5, size_threshold=2,
                                             max_fragment_edges=5))
    return db, indexes


class TestWalkthrough:
    def test_status_progression(self, chem):
        db, indexes = chem
        engine = PragueEngine(db, indexes, sigma=1)
        for node, label in {0: "C", 1: "C", 2: "S", 3: "S"}.items():
            engine.add_node(node, label)

        # Step 1: C-C -> frequent (all 12 graphs contain it, α = 0.5).
        r1 = engine.add_edge(0, 1)
        assert r1.status is QueryStatus.FREQUENT
        assert r1.rq_size == 12

        # Step 2: C-C-S -> infrequent; only the 4 sulfur graphs remain.
        r2 = engine.add_edge(1, 2)
        assert r2.status is QueryStatus.INFREQUENT
        assert r2.rq_size == 4

        # Step 3 (the bold edge): S-S never occurs — a support-0 DIF — so
        # Rq provably empties and the status turns "Similar" (Figure 3).
        r3 = engine.add_edge(2, 3)
        assert r3.status is QueryStatus.SIMILAR
        assert r3.rq_size == 0
        assert engine.option_pending

        # The user presses Run: exact verification is empty, similarity
        # search returns the 4 sulfur graphs, each missing exactly the S-S
        # bond (distance 1).
        report = engine.run()
        assert not report.results.exact_ids
        matched = {m.graph_id: m.distance for m in report.results.similar}
        assert matched == {8: 1, 9: 1, 10: 1, 11: 1}

    def test_modify_instead_of_similarity(self, chem):
        db, indexes = chem
        engine = PragueEngine(db, indexes, sigma=1, auto_similarity=False)
        for node, label in {0: "C", 1: "C", 2: "S", 3: "S"}.items():
            engine.add_node(node, label)
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
        engine.add_edge(2, 3)
        assert engine.option_pending
        suggestion = engine.suggestion()
        assert suggestion is not None
        # Deleting the S-S edge restores the 4-candidate set (C-C-S); the
        # only other legal deletion (C-C) would leave C-S-S with none.
        assert len(suggestion.candidates) == 4
        engine.delete_edge()
        report = engine.run()
        assert report.results.exact_ids == [8, 9, 10, 11]

    def test_gblender_returns_empty_from_bold_step(self, chem):
        """The contrast motivating PRAGUE: GBLENDER gives up (Section I-A)."""
        from repro.baselines import GBlenderEngine

        db, indexes = chem
        engine = GBlenderEngine(db, indexes)
        for node, label in {0: "C", 1: "C", 2: "S", 3: "S"}.items():
            engine.add_node(node, label)
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
        step = engine.add_edge(2, 3)
        assert step.rq_size == 0
        results, _ = engine.run()
        assert results == []  # empty result set, no similarity fallback
