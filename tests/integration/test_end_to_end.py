"""Cross-system integration: every engine agrees with the oracle, and the
blended paradigm produces the same answers as the traditional systems."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DistVpIndex,
    DistVpSearch,
    FeatureIndex,
    GBlenderEngine,
    GrafilSearch,
    SigmaSearch,
)
from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.core import PragueEngine, formulate
from repro.datasets import spec_from_graph
from repro.graph.generators import perturb_with_new_edge
from repro.testing import drive_engine, sample_subgraph


@pytest.fixture(scope="module")
def traditional(medium_db, medium_indexes):
    findex = FeatureIndex(medium_db, medium_indexes.frequent, max_feature_edges=3)
    return {
        "GR": GrafilSearch(medium_db, findex),
        "SG": SigmaSearch(medium_db, findex),
    }


class TestAllSystemsAgree:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_similarity_consensus(self, seed, medium_db, medium_indexes, traditional):
        rng = random.Random(seed)
        q0 = sample_subgraph(rng, medium_db, 3, 5)
        q = perturb_with_new_edge(rng, q0, medium_db.node_label_universe())
        sigma = 2
        truth = naive_similarity_search(q, medium_db, sigma)
        # PRAGUE (blended)
        prague = PragueEngine(medium_db, medium_indexes, sigma=sigma)
        drive_engine(prague, q)
        report = prague.run()
        if report.results.exact_ids:
            # the perturbation happened to match: all systems see dist 0
            assert {gid for gid, d in truth.items() if d == 0} == set(
                report.results.exact_ids
            )
            return
        got = {m.graph_id: m.distance for m in report.results.similar}
        assert got == truth
        # Traditional systems agree on membership.
        for name, system in traditional.items():
            outcome = system.search(q, sigma)
            assert set(outcome.matches) == set(truth), name

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_containment_consensus(self, seed, medium_db, medium_indexes):
        rng = random.Random(seed)
        q = sample_subgraph(rng, medium_db, 2, 5)
        truth = naive_containment_search(q, medium_db)
        prague = PragueEngine(medium_db, medium_indexes)
        drive_engine(prague, q)
        assert prague.run().results.exact_ids == truth
        gblender = GBlenderEngine(medium_db, medium_indexes)
        drive_engine(gblender, q)
        results, _ = gblender.run()
        assert results == truth


class TestCandidatePruning:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=8, deadline=None)
    def test_prague_candidates_not_larger_than_db(
        self, seed, medium_db, medium_indexes, traditional
    ):
        """The headline claim: PRG's candidate sets are small — at minimum
        never worse than the whole database, and supersets of the truth."""
        rng = random.Random(seed)
        q0 = sample_subgraph(rng, medium_db, 3, 5)
        q = perturb_with_new_edge(rng, q0, medium_db.node_label_universe())
        sigma = 2
        prague = PragueEngine(medium_db, medium_indexes, sigma=sigma)
        drive_engine(prague, q)
        report = prague.run()
        truth = naive_similarity_search(q, medium_db, sigma)
        assert report.candidate_count <= len(medium_db)
        if report.results.exact_ids:
            # the exact path answered: its results are the distance-0 truth
            assert set(report.results.exact_ids) == {
                gid for gid, d in truth.items() if d == 0
            }
        else:
            assert set(truth) <= {m.graph_id for m in report.results.similar}


class TestFullSessionFlow:
    def test_formulate_modify_rerun(self, medium_db, medium_indexes):
        """A realistic session: draw, get an empty Rq, accept the suggestion,
        keep drawing, and run — every stage consistent with the oracle."""
        rng = random.Random(11)
        q0 = sample_subgraph(rng, medium_db, 4, 4)
        q = perturb_with_new_edge(rng, q0, "Z")
        engine = PragueEngine(medium_db, medium_indexes, auto_similarity=False)
        for node in q.nodes():
            engine.add_node(node, q.label(node))
        from repro.testing import connected_order

        z_edge = next(
            e for e in q.edges() if "Z" in (q.label(e[0]), q.label(e[1]))
        )
        for u, v in connected_order(q0):
            engine.add_edge(u, v)
        engine.add_edge(*z_edge)
        assert engine.option_pending
        engine.delete_edge()  # accept suggestion -> exact candidates back
        report = engine.run()
        truth = naive_containment_search(engine.query.graph(), medium_db)
        assert report.results.exact_ids == truth

    def test_session_trace_srt_accounting(self, medium_db, medium_indexes):
        rng = random.Random(12)
        q = sample_subgraph(rng, medium_db, 4, 5)
        spec = spec_from_graph("flow", q)
        engine = PragueEngine(medium_db, medium_indexes)
        trace = formulate(engine, spec, edge_latency=2.0)
        # with 2s latency per edge, tiny test corpora never accumulate backlog
        assert trace.backlog_before_run == 0.0
        assert trace.srt_seconds == trace.run_report.processing_seconds

    def test_distvp_agreement_on_small_corpus(self, small_db):
        rng = random.Random(13)
        q = sample_subgraph(rng, small_db, 3, 4)
        sigma = 1
        index = DistVpIndex(small_db, sigma)
        outcome = DistVpSearch(small_db, index).search(q, sigma)
        assert set(outcome.matches) == set(
            naive_similarity_search(q, small_db, sigma)
        )
