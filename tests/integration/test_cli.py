"""The command-line interface, end to end (in-process, via cli.main)."""

import pytest

from repro.cli import main
from repro.graph.serialization import read_database, write_database
from repro.testing import small_database


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A tiny database + index pair on disk."""
    root = tmp_path_factory.mktemp("cli")
    db_path = root / "db.lg"
    write_database(small_database(seed=2, num_graphs=25), db_path)
    idx_path = root / "db.idx"
    rc = main([
        "index", str(db_path), "--alpha", "0.2", "--beta", "2",
        "--max-edges", "4", "--out", str(idx_path),
    ])
    assert rc == 0
    return root, db_path, idx_path


class TestGenerateAndStats:
    def test_generate_aids(self, tmp_path, capsys):
        out = tmp_path / "a.lg"
        rc = main(["generate", "--kind", "aids", "--size", "15",
                   "--out", str(out)])
        assert rc == 0
        assert len(read_database(out)) == 15
        assert "wrote" in capsys.readouterr().out

    def test_generate_graphgen(self, tmp_path):
        out = tmp_path / "g.lg"
        rc = main(["generate", "--kind", "graphgen", "--size", "10",
                   "--seed", "5", "--out", str(out)])
        assert rc == 0
        assert len(read_database(out)) == 10

    def test_stats(self, workspace, capsys):
        _, db_path, _ = workspace
        assert main(["stats", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "graphs     : 25" in out
        assert "node labels" in out


class TestQuery:
    def _write_query(self, path, lines):
        path.write_text("\n".join(lines) + "\n")

    def test_exact_query(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        qpath = tmp_path / "q.lg"
        self._write_query(qpath, ["t # 0", "v 0 A", "v 1 B", "e 0 1"])
        rc = main(["query", str(db_path), str(idx_path),
                   "--query", str(qpath)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "query:" in out
        assert "e1:" in out

    def test_query_with_dot_output(self, workspace, tmp_path):
        root, db_path, idx_path = workspace
        qpath = tmp_path / "q.lg"
        self._write_query(qpath, ["t # 0", "v 0 A", "v 1 A", "e 0 1"])
        dot = tmp_path / "q.dot"
        rc = main(["query", str(db_path), str(idx_path),
                   "--query", str(qpath), "--dot", str(dot)])
        assert rc == 0
        assert dot.read_text().startswith('graph "query"')

    def test_similarity_query(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        qpath = tmp_path / "q.lg"
        # A/B/C triangle is unlikely to match exactly; sigma=2 allows misses.
        self._write_query(qpath, [
            "t # 0", "v 0 A", "v 1 B", "v 2 C",
            "e 0 1", "e 1 2", "e 0 2",
        ])
        rc = main(["query", str(db_path), str(idx_path),
                   "--query", str(qpath), "--sigma", "2"])
        assert rc == 0


class TestSession:
    def test_full_session(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        script = tmp_path / "s.txt"
        script.write_text(
            "# demo session\n"
            "node a A\n"
            "node b B\n"
            "node c A\n"
            "edge a b\n"
            "edge b c\n"
            "delete 2\n"
            "run\n"
        )
        rc = main(["session", str(db_path), str(idx_path),
                   "--script", str(script)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edge e1" in out
        assert "deleted e2" in out
        assert "session statistics" in out

    def test_relabel_action(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        script = tmp_path / "s.txt"
        script.write_text(
            "node a A\nnode b B\nedge a b\nrelabel b C\nrun\n"
        )
        rc = main(["session", str(db_path), str(idx_path),
                   "--script", str(script)])
        assert rc == 0
        assert "relabeled b -> C" in capsys.readouterr().out

    def test_unknown_action_fails(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        script = tmp_path / "s.txt"
        script.write_text("explode\n")
        rc = main(["session", str(db_path), str(idx_path),
                   "--script", str(script)])
        assert rc == 2

    def test_domain_error_reported(self, workspace, tmp_path, capsys):
        root, db_path, idx_path = workspace
        script = tmp_path / "s.txt"
        script.write_text("node a A\nedge a a\n")  # self loop
        rc = main(["session", str(db_path), str(idx_path),
                   "--script", str(script)])
        assert rc == 1
        assert "!!" in capsys.readouterr().err


class TestOracleSmoke:
    def test_bounded_sweep_is_divergence_free(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "oracle_smoke.json"
        rc = main(["oracle-smoke", "--sessions", "3",
                   "--out", str(manifest_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle-smoke OK (divergence-free)" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["divergence_free"] is True
        assert manifest["sessions"] == 3
        assert manifest["failures"] == []
