"""End-to-end pipeline with *edge-labeled* graphs (bond types).

The paper's graph model carries edge labels (ψ : E → Σ_Eℓ); every layer —
canonical codes, mining, DIFs, indexes, SPIGs, similarity — must distinguish
bonds.  These tests run the whole stack on a bond-labeled molecular corpus.
"""

import random

import pytest

from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.config import MiningParams
from repro.core import PragueEngine
from repro.datasets import generate_aids_like
from repro.graph import Graph, canonical_code
from repro.index import build_indexes
from repro.testing import drive_engine, sample_subgraph


@pytest.fixture(scope="module")
def bonded():
    db = generate_aids_like(60, seed=17, bond_labels=True)
    indexes = build_indexes(db, MiningParams(0.15, 3, 5))
    return db, indexes


class TestBondLabeledCorpus:
    def test_bond_labels_present(self, bonded):
        db, _ = bonded
        labels = set(db.edge_label_universe())
        assert labels <= {"s", "d", "t", "a"}
        assert "s" in labels

    def test_codes_distinguish_bonds(self):
        a = Graph(); a.add_node(0, "C"); a.add_node(1, "C"); a.add_edge(0, 1, "s")
        b = Graph(); b.add_node(0, "C"); b.add_node(1, "C"); b.add_edge(0, 1, "d")
        assert canonical_code(a) != canonical_code(b)

    def test_mined_fragments_carry_bond_labels(self, bonded):
        _, indexes = bonded
        labeled = 0
        for frag in indexes.frequent.values():
            for u, v in frag.graph.edges():
                if frag.graph.edge_label(u, v) is not None:
                    labeled += 1
        assert labeled > 0

    def test_difs_include_bond_level_gaps(self, bonded):
        """Non-occurring (atom, bond, atom) triples become support-0 DIFs."""
        _, indexes = bonded
        single_edge_difs = [
            frag for frag in indexes.difs.values() if frag.size == 1
        ]
        assert any(frag.support == 0 for frag in single_edge_difs)


class TestBondLabeledQueries:
    def test_exact_queries_match_oracle(self, bonded):
        db, indexes = bonded
        rng = random.Random(2)
        for _ in range(8):
            q = sample_subgraph(rng, db, 2, 4)
            engine = PragueEngine(db, indexes)
            drive_engine(engine, q)
            assert engine.run().results.exact_ids == \
                naive_containment_search(q, db)

    def test_bond_mismatch_is_not_a_match(self, bonded):
        """Changing one bond type must not match graphs with the original."""
        db, indexes = bonded
        rng = random.Random(3)
        while True:
            q = sample_subgraph(rng, db, 2, 3)
            edges = [
                (u, v) for u, v in q.edges() if q.edge_label(u, v) == "s"
            ]
            if edges:
                break
        u, v = edges[0]
        q2 = q.copy()
        q2.remove_edge(u, v)
        q2.add_edge(u, v, "t")  # triple bonds are rare: likely no match
        engine = PragueEngine(db, indexes)
        drive_engine(engine, q2)
        res = engine.run()
        assert set(res.results.exact_ids) == set(
            naive_containment_search(q2, db)
        )

    def test_similarity_with_bond_labels(self, bonded):
        db, indexes = bonded
        rng = random.Random(4)
        q = sample_subgraph(rng, db, 3, 4)
        # perturb with an unlikely bonded edge
        anchor = next(iter(q.nodes()))
        new_id = max(int(n) for n in q.nodes()) + 1
        q.add_node(new_id, "Hg")
        q.add_edge(anchor, new_id, "t")
        sigma = 1
        engine = PragueEngine(db, indexes, sigma=sigma)
        drive_engine(engine, q)
        res = engine.run()
        got = {m.graph_id: m.distance for m in res.results.similar}
        truth = naive_similarity_search(q, db, sigma)
        if res.results.exact_ids:
            assert set(res.results.exact_ids) == {
                g for g, d in truth.items() if d == 0
            }
        else:
            assert got == truth

    def test_serialization_roundtrip_with_bonds(self, bonded, tmp_path):
        from repro.graph.serialization import read_database, write_database

        db, _ = bonded
        path = tmp_path / "bonded.lg"
        write_database(db, path)
        loaded = read_database(path)
        for gid in range(0, len(db), 10):
            assert canonical_code(loaded[gid]) == canonical_code(db[gid])
