"""The benchmark harness utilities (no large dataset builds here)."""

import json

from repro.bench import format_table, mb, ms, scaled, time_call
from repro.bench.harness import emit, results_dir
from repro.bench.metrics import Stopwatch


class TestMetrics:
    def test_mb(self):
        assert mb(1024 * 1024) == 1.0

    def test_ms(self):
        assert ms(0.25) == 250.0

    def test_time_call(self):
        result, elapsed = time_call(lambda x: x + 1, 41)
        assert result == 42
        assert elapsed >= 0

    def test_stopwatch(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert set(sw.laps) == {"a", "b"}
        assert sw.total() == sum(sw.laps.values())


class TestHarness:
    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(1000) == 20  # never below the floor

    def test_scaled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled(1000) == 1000

    def test_format_table(self):
        text = format_table(
            "Table X", ["system", "size"], [["PRG", 36.1], ["GR", 11.1]]
        )
        assert "Table X" in text
        assert "PRG" in text
        lines = text.splitlines()
        assert len(lines) == 6  # title, rule, header, sep, 2 rows

    def test_emit_writes_results(self):
        emit("selftest", "Table\n=====\nx | y", {"rows": [1, 2]})
        md = results_dir() / "selftest.md"
        js = results_dir() / "selftest.json"
        assert md.exists()
        assert json.loads(js.read_text()) == {"rows": [1, 2]}
        md.unlink()
        js.unlink()
