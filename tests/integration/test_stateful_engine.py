"""Stateful property test: random GUI action sequences never corrupt state.

A hypothesis rule-based machine plays an erratic user: drawing edges between
random labeled nodes, deleting edges, toggling similarity search, relabeling
nodes and pressing Run at arbitrary points.  After every action the engine's
SPIG set must mirror exactly the connected-subset structure of the current
query, and every Run must agree with the brute-force oracle.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines.naive import naive_containment_search, naive_similarity_search
from repro.config import MiningParams
from repro.core import PragueEngine
from repro.core.modify import deletable_edges
from repro.exceptions import QueryError
from repro.index import build_indexes
from repro.testing import all_connected_edge_subsets, small_database

_DB = small_database(seed=13, num_graphs=25, max_nodes=6)
_INDEXES = build_indexes(
    _DB, MiningParams(min_support=0.2, size_threshold=2, max_fragment_edges=5)
)
_LABELS = _DB.node_label_universe()
_MAX_EDGES = 5


class EngineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.engine = PragueEngine(_DB, _INDEXES, sigma=1)
        self.nodes = []

    # ------------------------------------------------------------------
    @rule(label_idx=st.integers(0, len(_LABELS) - 1))
    def drop_node(self, label_idx: int) -> None:
        node = f"n{len(self.nodes)}"
        self.engine.add_node(node, _LABELS[label_idx])
        self.nodes.append(node)

    @precondition(lambda self: len(self.nodes) >= 2
                  and self.engine.query.num_edges < _MAX_EDGES)
    @rule(i=st.integers(0, 10), j=st.integers(0, 10))
    def draw_edge(self, i: int, j: int) -> None:
        u = self.nodes[i % len(self.nodes)]
        v = self.nodes[j % len(self.nodes)]
        try:
            self.engine.add_edge(u, v)
        except QueryError:
            pass  # duplicate edge, self loop, or disconnected: GUI refuses

    @precondition(lambda self: self.engine.query.num_edges >= 1)
    @rule(pick=st.integers(0, 10))
    def delete_edge(self, pick: int) -> None:
        options = deletable_edges(self.engine.query)
        if not options:
            return
        self.engine.delete_edge(options[pick % len(options)])

    @precondition(lambda self: self.engine.query.num_edges >= 1)
    @rule()
    def toggle_similarity(self) -> None:
        if not self.engine.sim_flag:
            self.engine.enable_similarity()

    @precondition(lambda self: self.engine.query.num_edges >= 1)
    @rule(pick=st.integers(0, 10), label_idx=st.integers(0, len(_LABELS) - 1))
    def relabel(self, pick: int, label_idx: int) -> None:
        fragment_nodes = list(self.engine.query.graph().nodes())
        if not fragment_nodes:
            return
        try:
            self.engine.relabel_node(
                fragment_nodes[pick % len(fragment_nodes)], _LABELS[label_idx]
            )
        except QueryError:
            pass  # relabeling would transiently disconnect: GUI refuses

    @precondition(lambda self: self.engine.query.num_edges >= 1)
    @rule()
    def press_run(self) -> None:
        q = self.engine.query.graph()
        sim_mode = self.engine.sim_flag
        report = self.engine.run()
        exact_truth = naive_containment_search(q, _DB)
        got = {m.graph_id: m.distance for m in report.results.similar}
        if sim_mode:
            # similarity mode: exact matches surface at distance 0
            truth = naive_similarity_search(q, _DB, self.engine.sigma)
            assert got == truth
            assert {g for g, d in got.items() if d == 0} == set(exact_truth)
        elif report.results.exact_ids:
            assert report.results.exact_ids == exact_truth
        else:
            # exact path fell back to similarity (Alg 1, lines 19-21)
            assert exact_truth == []
            assert got == naive_similarity_search(q, _DB, self.engine.sigma)

    # ------------------------------------------------------------------
    @invariant()
    def spig_registry_matches_query(self) -> None:
        engine = getattr(self, "engine", None)
        if engine is None:
            return
        query = engine.query
        if query.num_edges == 0:
            assert engine.manager.num_vertices() == 0
            return
        id_of = {}
        for eid in query.edge_ids():
            u, v, _ = query.edge(eid)
            id_of[frozenset((u, v))] = eid
        truth = {
            frozenset(id_of[frozenset(e)] for e in subset)
            for subset in all_connected_edge_subsets(query.graph())
        }
        seen = set()
        for spig in engine.manager.spigs.values():
            for vertex in spig.vertices():
                seen.update(vertex.edge_sets)
        assert seen == truth

    @invariant()
    def level_counts_obey_lemma1(self) -> None:
        engine = getattr(self, "engine", None)
        if engine is None or engine.query.num_edges == 0:
            return
        n = engine.query.num_edges
        for k in range(1, n + 1):
            assert engine.manager.total_vertices_at(k) <= math.comb(n, k)

    @invariant()
    def exact_candidates_sound(self) -> None:
        engine = getattr(self, "engine", None)
        if engine is None or engine.query.num_edges == 0 or engine.sim_flag:
            return
        truth = set(naive_containment_search(engine.query.graph(), _DB))
        assert truth <= set(engine.rq)


TestEngineMachine = EngineMachine.TestCase
TestEngineMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
