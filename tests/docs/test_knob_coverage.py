"""Knob-coverage audit: every ``REPRO_*`` knob is documented.

``docs/CONFIGURATION.md`` claims to be the single source of truth for knob
names, defaults and semantics.  This audit makes that claim enforceable:
every ``REPRO_*`` environment variable read anywhere in ``src/repro/``
must have a summary-table row in CONFIGURATION.md, and every knob the
table documents must still exist in the code — doc rot is caught in both
directions.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIG_SOURCE = REPO_ROOT / "src" / "repro" / "config.py"
CONFIG_DOC = REPO_ROOT / "docs" / "CONFIGURATION.md"

_KNOB = re.compile(r"\bREPRO_[A-Z0-9_]+\b")


def _concrete(names):
    """Drop family prefixes like the ``REPRO_SERVICE_`` in ``REPRO_SERVICE_*``."""
    return {name for name in names if not name.endswith("_")}
#: A summary-table row: ``| `REPRO_FOO` | default | accessor | ... |``
_TABLE_ROW = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`\s*\|", re.MULTILINE)


def knobs_in_source():
    """Every REPRO_* name read anywhere under ``src/repro/``."""
    found = set()
    for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
        found.update(_KNOB.findall(path.read_text()))
    return _concrete(found)


def knobs_in_config_module():
    return _concrete(_KNOB.findall(CONFIG_SOURCE.read_text()))


def test_config_module_is_the_single_reader():
    """Knobs are only read via repro.config — no stray os.environ lookups."""
    stray = knobs_in_source() - knobs_in_config_module()
    assert not stray, (
        f"REPRO_* knobs referenced outside src/repro/config.py's vocabulary: "
        f"{sorted(stray)} — add accessors to repro.config"
    )


def test_every_knob_has_a_table_row():
    documented = set(_TABLE_ROW.findall(CONFIG_DOC.read_text()))
    missing = knobs_in_config_module() - documented
    assert not missing, (
        f"knobs missing from the CONFIGURATION.md summary table: "
        f"{sorted(missing)}"
    )


def test_every_documented_knob_exists():
    text = CONFIG_DOC.read_text()
    stale = _concrete(_KNOB.findall(text)) - knobs_in_source()
    assert not stale, (
        f"CONFIGURATION.md documents knobs no code reads: {sorted(stale)}"
    )


def test_knob_coverage_is_nontrivial():
    """Guard the guard: the regexes really extract the knob vocabulary."""
    knobs = knobs_in_config_module()
    assert {
        "REPRO_SCALE",
        "REPRO_WORKERS",
        "REPRO_BUILD_WORKERS",
        "REPRO_BUILD_SHARDS",
        "REPRO_ARENA",
    } <= knobs
    assert len(_TABLE_ROW.findall(CONFIG_DOC.read_text())) >= 15
