"""Documentation integrity: links resolve, documented commands exist.

Docs rot silently — a renamed file or CLI subcommand breaks every tutorial
that mentions it without failing a single code test.  This suite walks
``README.md`` and ``docs/*.md`` and asserts that

* every relative markdown link points at a file that exists,
* every backticked repo path (``src/...``, ``docs/...``, ``tests/...``,
  ``benchmarks/...``) resolves,
* every documented ``python -m repro <subcommand>`` is a real subcommand of
  :mod:`repro.cli`.
"""

import re
from pathlib import Path

import pytest

from repro.cli import _COMMANDS

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_BACKTICKED_PATH = re.compile(
    r"`((?:src|docs|tests|benchmarks)/[A-Za-z0-9_./-]+)`"
)
_CLI_COMMAND = re.compile(r"python -m repro (\w[\w-]*)")
_CLI_BRACE_LIST = re.compile(r"python -m repro \{([^}]+)\}")


def _doc_ids(path):
    return str(path.relative_to(REPO_ROOT))


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids)
class TestOneDocument:
    def test_exists_and_nonempty(self, doc):
        assert doc.is_file()
        assert doc.read_text().strip()

    def test_relative_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]  # drop in-page anchors
            if not target:
                continue
            if not (doc.parent / target).resolve().exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"

    def test_backticked_repo_paths_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for match in _BACKTICKED_PATH.finditer(text):
            path = match.group(1)
            if "*" in path:
                continue  # glob examples like benchmarks/results/*.md
            candidate = REPO_ROOT / path
            if not candidate.exists():
                broken.append(path)
        assert not broken, f"{doc.name}: dangling paths {broken}"

    def test_documented_cli_subcommands_exist(self, doc):
        text = doc.read_text()
        documented = set(_CLI_COMMAND.findall(text))
        for brace_list in _CLI_BRACE_LIST.findall(text):
            documented.update(
                cmd.strip() for cmd in brace_list.split(",") if cmd.strip()
            )
        unknown = documented - set(_COMMANDS)
        assert not unknown, f"{doc.name}: unknown subcommands {unknown}"


def test_corpus_of_documents_is_nontrivial():
    """Guard the guard: the glob really picked up the documentation set."""
    names = {doc.name for doc in DOC_FILES}
    assert {
        "README.md",
        "ARCHITECTURE.md",
        "CONFIGURATION.md",
        "PERFORMANCE.md",
        "CORRECTNESS.md",
    } <= names


def test_readme_links_architecture_and_configuration():
    """The README must route readers to the module map and the knob page."""
    text = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/CONFIGURATION.md" in text
    assert "docs/OPERATIONS.md" in text


def test_trace_subcommand_is_documented_and_real():
    assert "trace" in _COMMANDS
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m repro trace" in readme
    assert "python -m repro trace --diff" in readme


def test_serve_subcommand_is_documented_and_real():
    assert "serve" in _COMMANDS
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m repro serve" in readme
    # the production runbook documents how to actually operate it
    operations = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text()
    assert "python -m repro serve" in operations


def test_perf_subcommand_is_documented_and_real():
    assert "perf" in _COMMANDS
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m repro perf" in readme


def test_top_subcommand_is_documented_and_real():
    assert "top" in _COMMANDS
    readme = (REPO_ROOT / "README.md").read_text()
    assert "python -m repro top" in readme
    operations = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text()
    assert "python -m repro top" in operations


def test_operations_page_covers_the_serve_knob_families():
    """OPERATIONS.md must mention every serve-relevant knob family."""
    operations = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text()
    for knob in (
        "REPRO_BUILD_WORKERS",
        "REPRO_SERVICE_MAX_SESSIONS",
        "REPRO_SERVICE_TTL",
        "REPRO_WORKERS",
        "REPRO_ARENA",
        "REPRO_POOL_WARM",
        "REPRO_POSTMORTEM_DIR",
        "REPRO_OBS_EXPORT",
    ):
        assert knob in operations, f"OPERATIONS.md does not mention {knob}"


def test_tutorial_reaches_the_service_layer():
    """The walkthrough must end at dataset → sharded build → serve → top."""
    tutorial = (REPO_ROOT / "docs" / "TUTORIAL.md").read_text()
    assert "python -m repro generate" in tutorial
    assert "python -m repro index" in tutorial
    assert "python -m repro serve" in tutorial
    assert "python -m repro top" in tutorial
