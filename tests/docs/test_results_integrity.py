"""Checked-in benchmark artifacts must stay in matched pairs and load clean.

Every ``benchmarks/results/*.md`` table is the rendering of a sibling
``.json`` (``repro.bench.harness.emit`` writes both); a table without its
data — or data without its table — means someone committed half a refresh.
The trajectory is the one json-only artifact (it has no table form), and it
must parse through the schema-versioned loader.
"""

import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

#: json-only artifacts (no rendered table counterpart): the perf trajectory
#: and the oracle-smoke manifest are machine-consumed, never tabled.
TABLELESS = {"trajectory", "oracle_smoke"}


def test_every_table_has_its_data_and_vice_versa():
    tables = {p.stem for p in RESULTS.glob("*.md")}
    data = {p.stem for p in RESULTS.glob("*.json")}
    assert tables, f"no result tables under {RESULTS}"
    assert tables - data == set(), "tables missing their .json data"
    assert data - tables - TABLELESS == set(), "data missing its .md table"


def test_every_json_artifact_parses():
    for path in RESULTS.glob("*.json"):
        payload = json.loads(path.read_text())
        assert isinstance(payload, dict), path


def test_trajectory_loads_through_the_versioned_loader():
    from repro.bench.ledger import load_trajectory

    records = load_trajectory(RESULTS / "trajectory.json")
    assert records and isinstance(records, list)
