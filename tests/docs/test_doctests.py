"""Run the public-API doctests as part of tier-1.

The examples in the module docstrings of :mod:`repro.core.prague` and the
observability layer are executable documentation — this keeps them true.
"""

import doctest

import pytest

import repro.core.prague
import repro.datasets.scale
import repro.index.sharded
import repro.obs
import repro.obs.metrics
import repro.obs.srt
import repro.obs.tracer

MODULES = [
    repro.core.prague,
    repro.datasets.scale,
    repro.index.sharded,
    repro.obs,
    repro.obs.tracer,
    repro.obs.metrics,
    repro.obs.srt,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
