"""Configuration knobs and the public API surface."""

import pytest

import repro
from repro.config import (
    DEFAULT_EDGE_LATENCY_SECONDS,
    DEFAULT_SUBGRAPH_DISTANCE,
    MiningParams,
    experiment_scale,
)


class TestMiningParams:
    def test_absolute_support_ceiling(self):
        assert MiningParams(0.1).absolute_support(10_000) == 1000
        assert MiningParams(0.1).absolute_support(15) == 2  # ceil(1.5)

    def test_absolute_support_floor_one(self):
        assert MiningParams(0.01).absolute_support(10) == 1

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            MiningParams(0.0).absolute_support(10)
        with pytest.raises(ValueError):
            MiningParams(1.0).absolute_support(10)

    def test_frozen(self):
        params = MiningParams()
        with pytest.raises(AttributeError):
            params.min_support = 0.5  # type: ignore[misc]

    def test_defaults_match_paper(self):
        params = MiningParams()
        assert params.min_support == 0.1  # the paper's AIDS default alpha
        assert DEFAULT_SUBGRAPH_DISTANCE == 3  # the paper's default sigma
        assert DEFAULT_EDGE_LATENCY_SECONDS == 2.0  # stated latency floor


class TestExperimentScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == 1.0

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert experiment_scale() == 2.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert experiment_scale() == 1.0

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        assert experiment_scale() == 0.01


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exception_hierarchy(self):
        from repro import exceptions

        assert issubclass(exceptions.GraphError, exceptions.ReproError)
        assert issubclass(exceptions.MiningError, exceptions.ReproError)
        assert issubclass(exceptions.SpigError, exceptions.ReproError)
        assert issubclass(exceptions.QueryError, exceptions.ReproError)
        assert issubclass(exceptions.SessionError, exceptions.ReproError)
        assert issubclass(exceptions.IndexError_, exceptions.ReproError)

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.graph
        import repro.gui
        import repro.index
        import repro.mining
        import repro.spig

        for module in (
            repro.graph, repro.mining, repro.index, repro.spig,
            repro.core, repro.baselines, repro.gui, repro.datasets,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__, name,
                )
