"""The perf-regression ledger: normalization, the gate, and the CLI exit codes.

The trajectory is only useful if the ``--check`` gate actually trips, so the
CLI tests monkeypatch :func:`repro.bench.ledger.run_perf_suite` with
synthetic metrics — a real run is too slow and too noisy for unit tests —
and assert the exit codes the CI workflow relies on: 0 clean, 1 on a >20 %
regression, 2 when there is no baseline to compare against.
"""

import pytest

from repro.bench import ledger
from repro.cli import main

FAST = {"suite.hot_s": 0.010, "suite.tiny_s": 0.0001}
SLOW = {"suite.hot_s": 0.015, "suite.tiny_s": 0.0002}  # +50 % and +100 %


def test_make_record_normalizes_by_calibration():
    record = ledger.make_record(FAST, calibration_s=0.005, label="x")
    assert record["label"] == "x"
    assert record["metrics"] == FAST
    assert record["normalized"]["suite.hot_s"] == pytest.approx(2.0)


def test_compare_flags_regressions_above_threshold():
    base = ledger.make_record(FAST, calibration_s=0.005)
    cand = ledger.make_record(SLOW, calibration_s=0.005)
    rows = {r["metric"]: r for r in ledger.compare_records(base, cand)}
    hot = rows["suite.hot_s"]
    assert hot["change_pct"] == pytest.approx(50.0)
    assert hot["regression"]


def test_noise_floor_exempts_sub_millisecond_metrics():
    base = ledger.make_record(FAST, calibration_s=0.005)
    cand = ledger.make_record(SLOW, calibration_s=0.005)
    rows = {r["metric"]: r for r in ledger.compare_records(base, cand)}
    tiny = rows["suite.tiny_s"]
    assert tiny["change_pct"] == pytest.approx(100.0)
    assert not tiny["regression"]  # 0.1 ms → 0.2 ms is jitter, not a signal


def test_compare_tolerates_improvements_and_small_drifts():
    base = ledger.make_record(FAST, calibration_s=0.005)
    drift = {"suite.hot_s": 0.011, "suite.tiny_s": 0.00005}  # +10 %, faster
    cand = ledger.make_record(drift, calibration_s=0.005)
    assert not any(r["regression"]
                   for r in ledger.compare_records(base, cand))


def test_normalization_cancels_machine_speed():
    """The same workload on a 2x-slower machine must not trip the gate."""
    base = ledger.make_record(FAST, calibration_s=0.005)
    slower_machine = {name: 2 * value for name, value in FAST.items()}
    cand = ledger.make_record(slower_machine, calibration_s=0.010)
    assert not any(r["regression"]
                   for r in ledger.compare_records(base, cand))


def test_trajectory_append_round_trip(tmp_path):
    path = tmp_path / "trajectory.json"
    assert ledger.load_trajectory(path) == []
    ledger.append_record(path, ledger.make_record(FAST, 0.005, label="a"))
    records = ledger.append_record(
        path, ledger.make_record(SLOW, 0.005, label="b")
    )
    assert [r["label"] for r in records] == ["a", "b"]
    assert [r["label"] for r in ledger.load_trajectory(path)] == ["a", "b"]


def test_trajectory_rejects_non_list_records(tmp_path):
    path = tmp_path / "trajectory.json"
    path.write_text('{"schema": 2, "kind": "trajectory", "records": {}}')
    with pytest.raises(ValueError, match="must be a list"):
        ledger.load_trajectory(path)


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def _patch_suite(monkeypatch, metrics, calibration=0.005):
    monkeypatch.setattr(ledger, "run_perf_suite", lambda seed=2012: metrics)
    monkeypatch.setattr(ledger, "calibrate", lambda repeats=5: calibration)


def test_cli_perf_appends_then_check_passes(tmp_path, monkeypatch, capsys):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--label", "seed", "--trajectory", str(path)]) == 0
    assert main(["perf", "--check", "--trajectory", str(path)]) == 0
    out = capsys.readouterr().out
    assert "perf --check OK" in out
    assert [r["label"] for r in ledger.load_trajectory(path)] == ["seed"]


def test_cli_perf_check_fails_on_synthetic_regression(
    tmp_path, monkeypatch, capsys
):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--trajectory", str(path)]) == 0
    _patch_suite(monkeypatch, SLOW)  # the suite got >20 % slower
    assert main(["perf", "--check", "--trajectory", str(path)]) == 1
    err = capsys.readouterr().err
    assert "perf regression: suite.hot_s" in err
    # --check must not have polluted the trajectory with the bad record.
    assert len(ledger.load_trajectory(path)) == 1


def test_cli_perf_check_without_baseline_exits_two(tmp_path, monkeypatch):
    _patch_suite(monkeypatch, FAST)
    missing = tmp_path / "missing.json"
    assert main(["perf", "--check", "--trajectory", str(missing)]) == 2
    assert not missing.exists()


def test_cli_perf_threshold_override(tmp_path, monkeypatch):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--trajectory", str(path)]) == 0
    _patch_suite(monkeypatch, {"suite.hot_s": 0.011, "suite.tiny_s": 0.0001})
    assert main(["perf", "--check", "--trajectory", str(path)]) == 0
    assert main(["perf", "--check", "--threshold", "5",
                 "--trajectory", str(path)]) == 1


def test_checked_in_trajectory_is_valid_and_seeded():
    """The repo ships its first record; --check must have a baseline."""
    path = ledger.trajectory_path()
    records = ledger.load_trajectory(path)
    assert records, f"{path} must contain the seed record"
    first = records[0]
    assert first["calibration_s"] > 0
    assert set(first["metrics"]) == set(first["normalized"])
    assert "session.replay_s" in first["metrics"]
