"""The perf-regression ledger: normalization, the gate, and the CLI exit codes.

The trajectory is only useful if the ``--check`` gate actually trips, so the
CLI tests monkeypatch :func:`repro.bench.ledger.run_perf_suite` with
synthetic metrics — a real run is too slow and too noisy for unit tests —
and assert the exit codes the CI workflow relies on: 0 clean, 1 on a >20 %
regression, 2 when there is no baseline to compare against.
"""

import pytest

from repro.bench import ledger
from repro.cli import main

FAST = {"suite.hot_s": 0.010, "suite.tiny_s": 0.0001}
SLOW = {"suite.hot_s": 0.015, "suite.tiny_s": 0.0002}  # +50 % and +100 %


def test_make_record_normalizes_by_calibration():
    record = ledger.make_record(FAST, calibration_s=0.005, label="x")
    assert record["label"] == "x"
    assert record["metrics"] == FAST
    assert record["normalized"]["suite.hot_s"] == pytest.approx(2.0)


def test_compare_flags_regressions_above_threshold():
    base = ledger.make_record(FAST, calibration_s=0.005)
    cand = ledger.make_record(SLOW, calibration_s=0.005)
    rows = {r["metric"]: r for r in ledger.compare_records(base, cand)}
    hot = rows["suite.hot_s"]
    assert hot["change_pct"] == pytest.approx(50.0)
    assert hot["regression"]


def test_noise_floor_exempts_sub_millisecond_metrics():
    base = ledger.make_record(FAST, calibration_s=0.005)
    cand = ledger.make_record(SLOW, calibration_s=0.005)
    rows = {r["metric"]: r for r in ledger.compare_records(base, cand)}
    tiny = rows["suite.tiny_s"]
    assert tiny["change_pct"] == pytest.approx(100.0)
    assert not tiny["regression"]  # 0.1 ms → 0.2 ms is jitter, not a signal


def test_compare_tolerates_improvements_and_small_drifts():
    base = ledger.make_record(FAST, calibration_s=0.005)
    drift = {"suite.hot_s": 0.011, "suite.tiny_s": 0.00005}  # +10 %, faster
    cand = ledger.make_record(drift, calibration_s=0.005)
    assert not any(r["regression"]
                   for r in ledger.compare_records(base, cand))


def test_normalization_cancels_machine_speed():
    """The same workload on a 2x-slower machine must not trip the gate."""
    base = ledger.make_record(FAST, calibration_s=0.005)
    slower_machine = {name: 2 * value for name, value in FAST.items()}
    cand = ledger.make_record(slower_machine, calibration_s=0.010)
    assert not any(r["regression"]
                   for r in ledger.compare_records(base, cand))


def test_trajectory_append_round_trip(tmp_path):
    path = tmp_path / "trajectory.json"
    assert ledger.load_trajectory(path) == []
    ledger.append_record(path, ledger.make_record(FAST, 0.005, label="a"))
    records = ledger.append_record(
        path, ledger.make_record(SLOW, 0.005, label="b")
    )
    assert [r["label"] for r in records] == ["a", "b"]
    assert [r["label"] for r in ledger.load_trajectory(path)] == ["a", "b"]


def test_trajectory_rejects_non_list_records(tmp_path):
    path = tmp_path / "trajectory.json"
    path.write_text('{"schema": 2, "kind": "trajectory", "records": {}}')
    with pytest.raises(ValueError, match="must be a list"):
        ledger.load_trajectory(path)


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def _profile(stacks, wall_s=1.0):
    return {"hz": 200.0, "seed": 2012, "wall_s": wall_s, "replays": 10,
            "samples": sum(stacks.values()), "stacks": stacks}


def _patch_suite(monkeypatch, metrics, calibration=0.005):
    monkeypatch.setattr(ledger, "run_perf_suite", lambda seed=2012: metrics)
    monkeypatch.setattr(ledger, "calibrate", lambda repeats=5: calibration)
    monkeypatch.setattr(
        ledger, "collect_profile",
        lambda seed=2012, hz=200.0, min_seconds=0.5:
            _profile({"a.py:main;a.py:hot": 10}),
    )


def test_cli_perf_appends_then_check_passes(tmp_path, monkeypatch, capsys):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--label", "seed", "--trajectory", str(path)]) == 0
    assert main(["perf", "--check", "--trajectory", str(path)]) == 0
    out = capsys.readouterr().out
    assert "perf --check OK" in out
    assert [r["label"] for r in ledger.load_trajectory(path)] == ["seed"]


def test_cli_perf_check_fails_on_synthetic_regression(
    tmp_path, monkeypatch, capsys
):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--trajectory", str(path)]) == 0
    _patch_suite(monkeypatch, SLOW)  # the suite got >20 % slower
    assert main(["perf", "--check", "--trajectory", str(path)]) == 1
    err = capsys.readouterr().err
    assert "perf regression: suite.hot_s" in err
    # --check must not have polluted the trajectory with the bad record.
    assert len(ledger.load_trajectory(path)) == 1


def test_cli_perf_check_without_baseline_exits_two(tmp_path, monkeypatch):
    _patch_suite(monkeypatch, FAST)
    missing = tmp_path / "missing.json"
    assert main(["perf", "--check", "--trajectory", str(missing)]) == 2
    assert not missing.exists()


def test_cli_perf_threshold_override(tmp_path, monkeypatch):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--trajectory", str(path)]) == 0
    _patch_suite(monkeypatch, {"suite.hot_s": 0.011, "suite.tiny_s": 0.0001})
    assert main(["perf", "--check", "--trajectory", str(path)]) == 0
    assert main(["perf", "--check", "--threshold", "5",
                 "--trajectory", str(path)]) == 1


def test_cli_perf_append_attaches_a_profile(tmp_path, monkeypatch):
    path = tmp_path / "trajectory.json"
    _patch_suite(monkeypatch, FAST)
    assert main(["perf", "--trajectory", str(path)]) == 0
    record = ledger.load_trajectory(path)[-1]
    assert record["profile"]["stacks"] == {"a.py:main;a.py:hot": 10}
    assert main(["perf", "--no-profile", "--trajectory", str(path)]) == 0
    assert "profile" not in ledger.load_trajectory(path)[-1]


def test_collect_profile_samples_a_real_session():
    profile = ledger.collect_profile(seed=2012, hz=300.0, min_seconds=0.2)
    assert profile["replays"] >= 1
    assert profile["wall_s"] >= 0.2
    assert profile["stacks"], "a real replay must yield sampled stacks"
    assert len(profile["stacks"]) <= 200  # compact: top stacks only
    assert profile["samples"] >= sum(profile["stacks"].values())


def test_explain_profiles_names_the_slowed_frame():
    before = _profile({"m:f;m:steady": 8, "m:f;m:hot": 2}, wall_s=1.0)
    after = _profile({"m:f;m:steady": 4, "m:f;m:hot": 16}, wall_s=2.0)
    rows = ledger.explain_profiles(before, after)
    assert rows[0]["frame"] == "m:hot"
    assert rows[0]["delta_s"] > 0
    assert rows[0]["in_a"] and rows[0]["in_b"]
    # self-seconds = wall x leaf share: hot was 2/10 of 1 s, now 16/20 of 2 s
    assert rows[0]["self_a_s"] == pytest.approx(0.2)
    assert rows[0]["self_b_s"] == pytest.approx(1.6)


def test_explain_profiles_marks_new_and_gone_frames():
    before = _profile({"m:f;m:removed": 5}, wall_s=1.0)
    after = _profile({"m:f;m:added": 5}, wall_s=1.0)
    rows = ledger.explain_profiles(before, after)
    by_frame = {r["frame"]: r for r in rows}
    assert by_frame["m:added"]["in_a"] is False
    assert by_frame["m:added"]["in_b"] is True
    assert by_frame["m:removed"]["in_b"] is False
    assert by_frame["m:removed"]["self_b_s"] == 0.0


class TestCliPerfExplain:
    def _write_trajectory(self, path, records):
        ledger.save_trajectory(path, records)

    def test_explain_names_the_biggest_slowdown(self, tmp_path, capsys):
        path = tmp_path / "trajectory.json"
        self._write_trajectory(path, [
            {"label": "before",
             "profile": _profile({"m:f;m:steady": 10}, wall_s=1.0)},
            {"label": "after",
             "profile": _profile({"m:f;m:steady": 10, "m:f;m:spin": 10},
                                 wall_s=2.0)},
        ])
        code = main(["perf", "--trajectory", str(path),
                     "--explain", "before", "after"])
        out = capsys.readouterr().out
        assert code == 0
        assert "m:spin (new)" in out
        assert "biggest slowdown: m:spin" in out

    def test_explain_resolves_numeric_and_negative_indexes(
        self, tmp_path, capsys
    ):
        path = tmp_path / "trajectory.json"
        self._write_trajectory(path, [
            {"label": "x", "profile": _profile({"m:f": 5}, wall_s=1.0)},
            {"label": "y", "profile": _profile({"m:f": 5}, wall_s=1.0)},
        ])
        assert main(["perf", "--trajectory", str(path),
                     "--explain", "-2", "-1"]) == 0
        out = capsys.readouterr().out
        assert "no frame got slower" in out

    def test_explain_without_profiles_is_a_usage_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "trajectory.json"
        self._write_trajectory(path, [
            {"label": "old-record"}, {"label": "new-record"},
        ])
        assert main(["perf", "--trajectory", str(path),
                     "--explain", "old-record", "new-record"]) == 2
        assert "profile" in capsys.readouterr().err

    def test_explain_with_unknown_label_is_a_usage_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "trajectory.json"
        self._write_trajectory(path, [
            {"label": "only", "profile": _profile({"m:f": 1})},
        ])
        assert main(["perf", "--trajectory", str(path),
                     "--explain", "only", "missing"]) == 2
        assert "missing" in capsys.readouterr().err


def test_checked_in_trajectory_is_valid_and_seeded():
    """The repo ships its first record; --check must have a baseline."""
    path = ledger.trajectory_path()
    records = ledger.load_trajectory(path)
    assert records, f"{path} must contain the seed record"
    first = records[0]
    assert first["calibration_s"] > 0
    assert set(first["metrics"]) == set(first["normalized"])
    assert "session.replay_s" in first["metrics"]
