"""A2F-index: DAG structure, delId deltas, MF/DF split, fragment clusters."""

import pytest

from repro.exceptions import IndexError_
from repro.graph import canonical_code
from repro.index.a2f import A2FIndex
from repro.mining import mine_frequent_fragments
from repro.testing import small_database


@pytest.fixture(scope="module")
def setup():
    db = small_database(seed=2, num_graphs=25, max_nodes=7)
    frequent = mine_frequent_fragments(db, 5, 5)
    beta = 2
    return db, frequent, A2FIndex(frequent, beta), beta


class TestLookup:
    def test_every_frequent_fragment_indexed(self, setup):
        _, frequent, a2f, _ = setup
        assert len(a2f) == len(frequent)
        for code in frequent:
            assert code in a2f
            assert a2f.lookup(code) is not None

    def test_unknown_code_absent(self, setup):
        _, _, a2f, _ = setup
        assert a2f.lookup((("nope",),)) is None

    def test_vertex_ids_match_lookup(self, setup):
        _, frequent, a2f, _ = setup
        for code in frequent:
            vid = a2f.lookup(code)
            assert a2f.vertex(vid).code == code


class TestDeltas:
    def test_fsg_reconstruction_equals_mined(self, setup):
        """delId(f) ∪ ⋃ children fsgIds == fsgIds(f) (the FG-Index property)."""
        _, frequent, a2f, _ = setup
        for code, frag in frequent.items():
            vid = a2f.lookup(code)
            assert a2f.fsg_ids(vid) == frag.fsg_ids

    def test_containment_along_edges(self, setup):
        """f' ⊂ f implies fsgIds(f) ⊆ fsgIds(f')."""
        _, _, a2f, _ = setup
        for vid in range(len(a2f)):
            v = a2f.vertex(vid)
            for cid in v.children:
                assert a2f.fsg_ids(cid) <= a2f.fsg_ids(vid)

    def test_delta_strictly_smaller_when_children_exist(self, setup):
        _, _, a2f, _ = setup
        for vid in range(len(a2f)):
            v = a2f.vertex(vid)
            if v.children:
                assert v.del_ids <= a2f.fsg_ids(vid)

    def test_support_helper(self, setup):
        _, frequent, a2f, _ = setup
        for code, frag in frequent.items():
            assert a2f.support(a2f.lookup(code)) == frag.support

    def test_edges_are_one_bigger(self, setup):
        _, _, a2f, _ = setup
        for vid in range(len(a2f)):
            v = a2f.vertex(vid)
            for cid in v.children:
                assert a2f.vertex(cid).size == v.size + 1
            for pid in v.parents:
                assert a2f.vertex(pid).size == v.size - 1


class TestMfDfSplit:
    def test_partition_by_beta(self, setup):
        _, _, a2f, beta = setup
        mf = a2f.mf_vertices()
        df = a2f.df_vertices()
        assert all(v.size <= beta for v in mf)
        assert all(v.size > beta for v in df)
        assert len(mf) + len(df) == len(a2f)

    def test_clusters_cover_df(self, setup):
        _, _, a2f, _ = setup
        clustered = set()
        for cluster in a2f.clusters:
            clustered.update(cluster.vertex_ids)
        assert clustered == {v.a2f_id for v in a2f.df_vertices()}

    def test_cluster_roots_have_no_df_parents(self, setup):
        _, _, a2f, beta = setup
        for cluster in a2f.clusters:
            for root in cluster.roots:
                v = a2f.vertex(root)
                assert all(a2f.vertex(p).size <= beta for p in v.parents)

    def test_leaf_cluster_lists(self, setup):
        """MF leaves (size == β) point to clusters holding their children."""
        _, _, a2f, beta = setup
        for v in a2f.mf_vertices():
            if v.size != beta:
                assert v.cluster_list == ()
                continue
            for cid in v.cluster_list:
                members = set(a2f.clusters[cid].vertex_ids)
                assert any(c in members for c in v.children)

    def test_spill_to_disk(self, setup, tmp_path):
        _, _, a2f, _ = setup
        paths = a2f.spill_df_index(tmp_path)
        assert len(paths) == len(a2f.clusters)
        assert all(p.exists() and p.stat().st_size > 0 for p in paths)


class TestValidation:
    def test_rejects_bad_beta(self, setup):
        _, frequent, _, _ = setup
        with pytest.raises(IndexError_):
            A2FIndex(frequent, 0)

    def test_rejects_non_closed_catalog(self, setup):
        _, frequent, _, _ = setup
        # Remove a size-1 fragment that has supergraphs: closure broken.
        broken = dict(frequent)
        small = min(broken.values(), key=lambda f: f.size)
        victim_code = small.code
        has_super = any(
            victim_code
            in {
                canonical_code(s)
                for s in __import__(
                    "repro.mining.dif", fromlist=["connected_one_smaller_subgraphs"]
                ).connected_one_smaller_subgraphs(f.graph)
            }
            for f in broken.values()
            if f.size == small.size + 1
        )
        del broken[victim_code]
        if has_super:
            with pytest.raises(IndexError_):
                A2FIndex(broken, 2)
