"""Index persistence and the size accounting behind Table II.

Covers both on-disk formats — the original catalog pickle and the arena
format (:mod:`repro.index.arena`) — including the property that loading
from *either* restores indexes with identical lookup results and identical
``pickled_size_bytes`` accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MiningParams
from repro.index import (
    a2f_size_bytes,
    a2i_size_bytes,
    build_indexes,
    load_indexes,
    load_indexes_arena,
    pickled_size_bytes,
    prague_index_size_bytes,
    save_indexes,
    save_indexes_arena,
)
from repro.testing import small_database


@pytest.fixture(scope="module")
def db():
    return small_database(seed=4, num_graphs=20, max_nodes=6)


@pytest.fixture(scope="module")
def idx(db):
    return build_indexes(db, MiningParams(0.2, 2, 4))


class TestSizes:
    def test_pickled_size_positive(self):
        assert pickled_size_bytes({"a": 1}) > 0

    def test_components_sum(self, idx):
        parts = a2f_size_bytes(idx)
        total = prague_index_size_bytes(idx)
        assert total == parts["mf_bytes"] + parts["df_bytes"] + a2i_size_bytes(idx)

    def test_mf_and_df_both_accounted(self, idx):
        parts = a2f_size_bytes(idx)
        assert parts["mf_bytes"] > 0
        # beta=2, max_edges=4 -> DF fragments exist in this corpus
        assert parts["df_bytes"] > 0


class TestSaveLoad:
    def test_round_trip(self, idx, tmp_path):
        path = tmp_path / "indexes.pkl"
        written = save_indexes(idx, path)
        assert written == path.stat().st_size
        loaded = load_indexes(path)
        assert set(loaded.frequent) == set(idx.frequent)
        assert set(loaded.difs) == set(idx.difs)
        assert loaded.params == idx.params
        assert loaded.db_size == idx.db_size

    def test_loaded_indexes_probe_identically(self, idx, tmp_path):
        path = tmp_path / "indexes.pkl"
        save_indexes(idx, path)
        loaded = load_indexes(path)
        for code in idx.frequent:
            a = idx.a2f.fsg_ids(idx.a2f.lookup(code))
            b = loaded.a2f.fsg_ids(loaded.a2f.lookup(code))
            assert a == b


class TestArenaFormat:
    def test_round_trip(self, db, idx, tmp_path):
        path = tmp_path / "indexes.arena"
        written = save_indexes_arena(idx, db, path)
        assert written == path.stat().st_size
        loaded = load_indexes_arena(path)
        assert set(loaded.frequent) == set(idx.frequent)
        assert set(loaded.difs) == set(idx.difs)
        assert loaded.params == idx.params
        assert loaded.db_size == idx.db_size

    def test_both_formats_probe_identically(self, db, idx, tmp_path):
        save_indexes(idx, tmp_path / "indexes.pkl")
        save_indexes_arena(idx, db, tmp_path / "indexes.arena")
        pickled = load_indexes(tmp_path / "indexes.pkl")
        arena = load_indexes_arena(tmp_path / "indexes.arena")
        for code in idx.frequent:
            live = idx.a2f.fsg_ids(idx.a2f.lookup(code))
            assert pickled.a2f.fsg_ids(pickled.a2f.lookup(code)) == live
            assert arena.a2f.fsg_ids(arena.a2f.lookup(code)) == live
        for code in idx.difs:
            live = idx.a2i.fsg_ids(idx.a2i.lookup(code))
            assert pickled.a2i.fsg_ids(pickled.a2i.lookup(code)) == live
            assert arena.a2i.fsg_ids(arena.a2i.lookup(code)) == live

    def test_both_formats_account_identically(self, db, idx, tmp_path):
        save_indexes(idx, tmp_path / "indexes.pkl")
        save_indexes_arena(idx, db, tmp_path / "indexes.arena")
        pickled = load_indexes(tmp_path / "indexes.pkl")
        arena = load_indexes_arena(tmp_path / "indexes.arena")
        assert a2f_size_bytes(pickled) == a2f_size_bytes(arena) \
            == a2f_size_bytes(idx)
        assert a2i_size_bytes(pickled) == a2i_size_bytes(arena) \
            == a2i_size_bytes(idx)
        assert prague_index_size_bytes(pickled) \
            == prague_index_size_bytes(arena) \
            == prague_index_size_bytes(idx)


class TestFormatsAgreeProperty:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_save_load_parity_across_formats(self, seed, tmp_path_factory):
        """Property: for any mined corpus, loading from the pickle format
        and from the arena format reproduces identical A2F/A2I lookups and
        identical size accounting."""
        corpus = small_database(seed=seed, num_graphs=12, max_nodes=5)
        idx = build_indexes(corpus, MiningParams(0.25, 2, 4))
        out = tmp_path_factory.mktemp(f"fmt-{seed}")
        save_indexes(idx, out / "indexes.pkl")
        save_indexes_arena(idx, corpus, out / "indexes.arena")
        pickled = load_indexes(out / "indexes.pkl")
        arena = load_indexes_arena(out / "indexes.arena")

        assert set(pickled.frequent) == set(arena.frequent) \
            == set(idx.frequent)
        assert set(pickled.difs) == set(arena.difs) == set(idx.difs)
        for code in idx.frequent:
            live = idx.a2f.fsg_ids(idx.a2f.lookup(code))
            assert pickled.a2f.fsg_ids(pickled.a2f.lookup(code)) == live
            assert arena.a2f.fsg_ids(arena.a2f.lookup(code)) == live
        for code in idx.difs:
            live = idx.a2i.fsg_ids(idx.a2i.lookup(code))
            assert pickled.a2i.fsg_ids(pickled.a2i.lookup(code)) == live
            assert arena.a2i.fsg_ids(arena.a2i.lookup(code)) == live
        assert a2f_size_bytes(pickled) == a2f_size_bytes(arena)
        assert a2i_size_bytes(pickled) == a2i_size_bytes(arena)
