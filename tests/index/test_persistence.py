"""Index persistence and the size accounting behind Table II."""

import pytest

from repro.config import MiningParams
from repro.index import (
    a2f_size_bytes,
    a2i_size_bytes,
    build_indexes,
    load_indexes,
    pickled_size_bytes,
    prague_index_size_bytes,
    save_indexes,
)
from repro.testing import small_database


@pytest.fixture(scope="module")
def idx():
    db = small_database(seed=4, num_graphs=20, max_nodes=6)
    return build_indexes(db, MiningParams(0.2, 2, 4))


class TestSizes:
    def test_pickled_size_positive(self):
        assert pickled_size_bytes({"a": 1}) > 0

    def test_components_sum(self, idx):
        parts = a2f_size_bytes(idx)
        total = prague_index_size_bytes(idx)
        assert total == parts["mf_bytes"] + parts["df_bytes"] + a2i_size_bytes(idx)

    def test_mf_and_df_both_accounted(self, idx):
        parts = a2f_size_bytes(idx)
        assert parts["mf_bytes"] > 0
        # beta=2, max_edges=4 -> DF fragments exist in this corpus
        assert parts["df_bytes"] > 0


class TestSaveLoad:
    def test_round_trip(self, idx, tmp_path):
        path = tmp_path / "indexes.pkl"
        written = save_indexes(idx, path)
        assert written == path.stat().st_size
        loaded = load_indexes(path)
        assert set(loaded.frequent) == set(idx.frequent)
        assert set(loaded.difs) == set(idx.difs)
        assert loaded.params == idx.params
        assert loaded.db_size == idx.db_size

    def test_loaded_indexes_probe_identically(self, idx, tmp_path):
        path = tmp_path / "indexes.pkl"
        save_indexes(idx, path)
        loaded = load_indexes(path)
        for code in idx.frequent:
            a = idx.a2f.fsg_ids(idx.a2f.lookup(code))
            b = loaded.a2f.fsg_ids(loaded.a2f.lookup(code))
            assert a == b
