"""A2I-index: the DIF array of Section III."""

import pytest

from repro.index.a2i import A2IIndex
from repro.mining import mine_difs, mine_frequent_fragments
from repro.testing import small_database


@pytest.fixture(scope="module")
def setup():
    db = small_database(seed=2, num_graphs=25, max_nodes=7)
    frequent = mine_frequent_fragments(db, 5, 4)
    difs = mine_difs(db, frequent, 5, 4)
    return difs, A2IIndex(difs)


class TestA2I:
    def test_all_difs_indexed(self, setup):
        difs, a2i = setup
        assert len(a2i) == len(difs)
        for code in difs:
            assert code in a2i

    def test_ascending_size_order(self, setup):
        """The paper: 'an array of DIFs arranged in ascending order of sizes'."""
        _, a2i = setup
        sizes = [e.size for e in a2i.entries()]
        assert sizes == sorted(sizes)

    def test_ids_are_array_positions(self, setup):
        _, a2i = setup
        for i, entry in enumerate(a2i.entries()):
            assert entry.a2i_id == i
            assert a2i.entry(i) is entry

    def test_fsg_ids_preserved(self, setup):
        difs, a2i = setup
        for code, frag in difs.items():
            assert a2i.fsg_ids(a2i.lookup(code)) == frag.fsg_ids

    def test_unknown_code(self, setup):
        _, a2i = setup
        assert a2i.lookup((("nope",),)) is None

    def test_empty_catalog(self):
        a2i = A2IIndex({})
        assert len(a2i) == 0
        assert a2i.entries() == ()
