"""Sharded parallel index builds: equivalence to serial, determinism, knobs.

The pipeline's contract (:mod:`repro.index.sharded`): for any worker/shard
count, the merged catalogs contain exactly the serial mine's canonical codes
with exactly the serial FSG-id lists — sharding changes how the mining work
is partitioned, never what comes out.
"""

import pytest

from repro.config import MiningParams
from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.index import build_indexes
from repro.index.sharded import merge_shard_catalogs, mine_sharded, partition_ids
from repro.mining.dif import mine_difs
from repro.mining.gspan import mine_frequent_fragments
from repro.testing import small_database

PARAMS = MiningParams(min_support=0.25, size_threshold=3, max_fragment_edges=4)


@pytest.fixture(scope="module")
def db():
    return small_database(seed=11, num_graphs=24, labels="ABC", max_nodes=7)


@pytest.fixture(scope="module")
def serial(db):
    min_sup = PARAMS.absolute_support(len(db))
    frequent = mine_frequent_fragments(db, min_sup, PARAMS.max_fragment_edges)
    difs = mine_difs(db, frequent, min_sup, PARAMS.max_fragment_edges)
    return frequent, difs


def _assert_equivalent(sharded_catalog, serial_catalog):
    assert set(sharded_catalog) == set(serial_catalog)
    for code, frag in serial_catalog.items():
        assert sharded_catalog[code].fsg_ids == frag.fsg_ids
    for code, frag in sharded_catalog.items():
        assert canonical_code(frag.graph) == code


class TestEquivalence:
    @pytest.mark.parametrize(
        "workers,shards", [(1, 2), (1, 3), (2, 0), (3, 0), (3, 5), (2, 7)]
    )
    def test_matches_serial_mine(self, db, serial, workers, shards):
        frequent, difs = mine_sharded(db, PARAMS, workers, shards)
        _assert_equivalent(frequent, serial[0])
        _assert_equivalent(difs, serial[1])

    def test_output_is_worker_count_invariant(self, db):
        a = mine_sharded(db, PARAMS, 1, shards=3)
        b = mine_sharded(db, PARAMS, 3, shards=3)
        assert list(a[0]) == list(b[0])  # same codes, same (sorted) order
        assert list(a[1]) == list(b[1])
        for catalog_a, catalog_b in zip(a, b):
            for code in catalog_a:
                assert catalog_a[code].fsg_ids == catalog_b[code].fsg_ids

    def test_output_is_shard_count_invariant(self, db):
        a = mine_sharded(db, PARAMS, 1, shards=2)
        b = mine_sharded(db, PARAMS, 1, shards=6)
        assert list(a[0]) == list(b[0])
        assert list(a[1]) == list(b[1])

    def test_more_shards_than_graphs(self, db, serial):
        frequent, difs = mine_sharded(db, PARAMS, 1, shards=len(db) + 10)
        _assert_equivalent(frequent, serial[0])
        _assert_equivalent(difs, serial[1])


class TestMerge:
    def test_merge_filters_locally_frequent_globally_infrequent(self, db, serial):
        """Shard miners over-approximate: their union holds fragments that a
        biased shard found frequent but the whole database does not.  The
        merge must recount them away and keep exactly the serial catalog."""
        import math

        from repro.index.sharded import _ShardView
        from repro.mining.gspan import GSpanMiner

        min_sup = PARAMS.absolute_support(len(db))
        shard_catalogs = []
        for part in partition_ids([gid for gid, _ in db.items()], 3):
            local = max(1, math.ceil(PARAMS.min_support * len(part)))
            shard_catalogs.append(
                GSpanMiner(
                    _ShardView(db, part), local, PARAMS.max_fragment_edges
                ).mine()
            )
        union = {code for cat in shard_catalogs for code in cat}
        assert union > set(serial[0])  # strictly more candidates than answers

        merged = merge_shard_catalogs(db, shard_catalogs, min_sup)
        _assert_equivalent(merged, serial[0])
        assert list(merged) == sorted(merged)  # deterministic order

    def test_merge_empty_inputs(self, db):
        min_sup = PARAMS.absolute_support(len(db))
        assert merge_shard_catalogs(db, [], min_sup) == {}


class TestDegenerate:
    def test_empty_database(self):
        frequent, difs = mine_sharded(GraphDatabase(), PARAMS, 4)
        assert frequent == {} and difs == {}

    def test_single_graph(self):
        db = small_database(seed=2, num_graphs=1, max_nodes=5)
        frequent, difs = mine_sharded(db, PARAMS, 4)
        min_sup = PARAMS.absolute_support(len(db))
        ref = mine_frequent_fragments(db, min_sup, PARAMS.max_fragment_edges)
        assert set(frequent) == set(ref)
        assert set(difs) == set(
            mine_difs(db, ref, min_sup, PARAMS.max_fragment_edges)
        )

    def test_alpha_validated_before_mining(self, db):
        with pytest.raises(ValueError):
            mine_sharded(db, MiningParams(min_support=1.5), 2)


class TestPartition:
    def test_partitions_cover_and_are_disjoint(self):
        parts = partition_ids(range(23), 4)
        assert [gid for part in parts for gid in part] == list(range(23))
        assert len(parts) == 4
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1

    def test_clamped_to_population(self):
        assert partition_ids(range(3), 10) == [[0], [1], [2]]
        assert partition_ids([], 4) == [[]]


class TestProgressEvents:
    def test_sharded_build_reports_phases(self, db):
        events = []
        mine_sharded(
            db, PARAMS, 1, shards=3,
            progress=lambda kind, fields: events.append((kind, fields)),
        )
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "index.build.start"
        assert kinds.count("index.build.shard") == 3
        assert "index.build.merge" in kinds
        assert kinds[-1] == "index.build.done"
        start = events[0][1]
        assert start["db_size"] == len(db) and start["shards"] == 3
        shards_seen = {f["shard"] for k, f in events if k == "index.build.shard"}
        assert shards_seen == {0, 1, 2}


class TestBuilderRouting:
    def test_env_knob_routes_to_sharded(self, db, serial, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "2")
        idx = build_indexes(db, PARAMS)
        _assert_equivalent(idx.frequent, serial[0])
        _assert_equivalent(idx.difs, serial[1])

    def test_explicit_args_override_env(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_WORKERS", "1")
        events = []
        build_indexes(
            db, PARAMS, workers=1, shards=2,
            progress=lambda kind, fields: events.append(kind),
        )
        assert "index.build.merge" in events  # the sharded pipeline ran

    def test_default_stays_serial(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_BUILD_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_BUILD_SHARDS", raising=False)
        events = []
        idx = build_indexes(
            db, PARAMS, progress=lambda kind, fields: events.append(kind)
        )
        assert events == []  # serial path emits no sharded-build events
        assert len(idx.frequent) > 0

    def test_cache_round_trip_from_sharded_build(self, db, serial, tmp_path):
        first = build_indexes(db, PARAMS, cache_dir=tmp_path, workers=2)
        second = build_indexes(db, PARAMS, cache_dir=tmp_path)  # cache hit
        _assert_equivalent(second.frequent, serial[0])
        assert set(second.difs) == set(first.difs)
