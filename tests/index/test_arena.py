"""The shared-memory arena: codec round-trips, lookup parity, lifecycle.

The arena is answer-critical infrastructure — pool workers verify against
*decoded* graphs — so the codec tests pin structural identity, the table
tests pin A2F/A2I probe parity against the live indexes, and the lifecycle
tests pin the publish/attach/dispose contract (including "dispose really
unlinks": the no-orphaned-segments guarantee CI checks after the suite).
"""

import pytest

from repro.config import MiningParams
from repro.core.candidates import full_mask
from repro.exceptions import IndexError_
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import Graph
from repro.index.arena import IndexArena, db_fingerprint, encode_arena
from repro.index.builder import build_indexes
from repro.testing import small_database


@pytest.fixture(scope="module")
def db():
    return small_database(seed=9, num_graphs=25, max_nodes=7)


@pytest.fixture(scope="module")
def indexes(db):
    return build_indexes(db, MiningParams(0.2, 2, 5))


def assert_same_structure(a: Graph, b: Graph) -> None:
    assert set(a.nodes()) == set(b.nodes())
    assert a.num_edges == b.num_edges
    for n in a.nodes():
        assert a.label(n) == b.label(n)
    for u, v in a.edges():
        assert b.has_edge(u, v)
        assert a.edge_label(u, v) == b.edge_label(u, v)


class TestCodec:
    def test_every_graph_round_trips(self, db):
        arena = IndexArena.build(db)
        for gid, g in db.items():
            assert_same_structure(g, arena.graph(gid))

    def test_decoded_graphs_are_memoised(self, db):
        arena = IndexArena.build(db)
        assert arena.graph(0) is arena.graph(0)

    def test_non_dense_node_ids_round_trip(self):
        g = Graph()
        g.add_node("left", "A")
        g.add_node("right", "B")
        g.add_node(7, "A")
        g.add_edge("left", "right", "x")
        g.add_edge("right", 7, None)
        db = GraphDatabase()
        db.add(g)
        arena = IndexArena.build(db)
        assert_same_structure(g, arena.graph(0))

    def test_universe_is_the_all_graphs_mask(self, db):
        arena = IndexArena.build(db)
        assert arena.universe_bits == full_mask(len(db))
        assert arena.db_size == len(db)

    def test_version_is_the_db_fingerprint(self, db):
        arena = IndexArena.build(db)
        assert arena.version == db_fingerprint(db)

    def test_add_changes_the_fingerprint(self):
        db = small_database(seed=3, num_graphs=5)
        before = db_fingerprint(db)
        g = Graph()
        g.add_node(0, "A")
        g.add_node(1, "B")
        g.add_edge(0, 1)
        db.add(g)
        assert db_fingerprint(db) != before

    def test_graph_id_out_of_range(self, db):
        arena = IndexArena.build(db)
        with pytest.raises(IndexError_, match="outside arena"):
            arena.graph(len(db))

    def test_bad_magic_rejected(self):
        with pytest.raises(IndexError_, match="bad magic"):
            IndexArena(b"NOTANARENA" + b"\x00" * 32)

    def test_missing_section_reported(self, db):
        arena = IndexArena.build(db)  # no indexes -> no a2f section
        with pytest.raises(IndexError_, match="no 'a2f' section"):
            arena.a2f_table()


class TestIndexTables:
    def test_a2f_lookup_parity(self, db, indexes):
        arena = IndexArena.build(db, indexes=indexes)
        table = arena.a2f_table()
        assert len(table) == len(indexes.a2f)
        for code in indexes.frequent:
            live = indexes.a2f.lookup(code)
            assert table.lookup(code) == live
            assert table.fsg_bits(live) == indexes.a2f.fsg_bits(live)
            assert table.fsg_ids(live) == indexes.a2f.fsg_ids(live)

    def test_a2i_lookup_parity(self, db, indexes):
        arena = IndexArena.build(db, indexes=indexes)
        table = arena.a2i_table()
        assert len(table) == len(indexes.a2i)
        for code in indexes.difs:
            live = indexes.a2i.lookup(code)
            assert table.lookup(code) == live
            assert table.fsg_bits(live) == indexes.a2i.fsg_bits(live)

    def test_beta_travels_with_the_a2f_table(self, db, indexes):
        arena = IndexArena.build(db, indexes=indexes)
        assert arena.a2f_table().beta == indexes.a2f.beta
        assert arena.a2i_table().beta is None

    def test_unknown_code_misses(self, db, indexes):
        arena = IndexArena.build(db, indexes=indexes)
        assert arena.a2f_table().lookup(("no", "such", "code")) is None
        assert ("no", "such", "code") not in arena.a2i_table()


class TestSharedMemoryLifecycle:
    def test_publish_attach_round_trip(self, db, indexes):
        arena = IndexArena.build(db, indexes=indexes)
        name = arena.publish()
        if name is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            assert arena.publish() == name  # memoised, no second segment
            attached = IndexArena.attach(name, expected_version=arena.version)
            assert attached.version == arena.version
            assert_same_structure(db[0], attached.graph(0))
            assert attached.a2f_table().codes == arena.a2f_table().codes
            attached.close()
        finally:
            arena.dispose()

    def test_attach_rejects_version_mismatch(self, db):
        arena = IndexArena.build(db)
        name = arena.publish()
        if name is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            with pytest.raises(IndexError_, match="version mismatch"):
                IndexArena.attach(name, expected_version="not-the-version")
        finally:
            arena.dispose()

    def test_dispose_unlinks_the_segment(self, db):
        from multiprocessing import shared_memory

        arena = IndexArena.build(db)
        name = arena.publish()
        if name is None:
            pytest.skip("shared memory unavailable on this platform")
        arena.dispose()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attached_dispose_does_not_unlink(self, db):
        arena = IndexArena.build(db)
        name = arena.publish()
        if name is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            attached = IndexArena.attach(name)
            attached.dispose()  # non-owner: close only
            again = IndexArena.attach(name)  # still there
            again.close()
        finally:
            arena.dispose()


class TestEncodeArenaBytes:
    def test_buffer_is_self_describing(self, db, indexes):
        data = encode_arena(db, indexes=indexes, include_catalogs=True)
        arena = IndexArena(data)
        assert arena.nbytes == len(data)
        assert arena.meta["db_size"] == len(db)
        for name in ("meta", "universe", "labels", "graphs", "a2f", "a2i",
                     "frequent", "difs"):
            assert arena.has_section(name)

    def test_catalogs_rebuild_identically(self, db, indexes):
        data = encode_arena(db, indexes=indexes, include_catalogs=True)
        arena = IndexArena(data)
        rebuilt = arena.catalog("frequent")
        assert set(rebuilt) == set(indexes.frequent)
        for code, frag in indexes.frequent.items():
            assert rebuilt[code].fsg_ids == frag.fsg_ids
            assert_same_structure(rebuilt[code].graph, frag.graph)
        rebuilt_difs = arena.catalog("difs")
        assert set(rebuilt_difs) == set(indexes.difs)
