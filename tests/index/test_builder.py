"""Index builder: assembly, parameterisation, content-hash caching."""

import pytest

from repro.config import MiningParams
from repro.index import build_indexes, database_fingerprint
from repro.testing import small_database


@pytest.fixture(scope="module")
def db():
    return small_database(seed=4, num_graphs=20, max_nodes=6)


class TestBuild:
    def test_catalogs_consistent_with_indexes(self, db):
        idx = build_indexes(db, MiningParams(0.2, 2, 4))
        assert len(idx.a2f) == len(idx.frequent)
        assert len(idx.a2i) == len(idx.difs)
        assert idx.db_size == len(db)

    def test_absolute_support(self, db):
        idx = build_indexes(db, MiningParams(0.2, 2, 4))
        assert idx.min_support_abs == 4  # ceil(0.2 * 20)

    def test_alpha_bounds_enforced(self, db):
        with pytest.raises(ValueError):
            build_indexes(db, MiningParams(min_support=1.5))

    def test_default_params(self, db):
        idx = build_indexes(db)
        assert idx.params.min_support == 0.1


class TestCaching:
    def test_cache_round_trip(self, db, tmp_path):
        params = MiningParams(0.2, 2, 4)
        first = build_indexes(db, params, cache_dir=tmp_path)
        files = list(tmp_path.glob("indexes_*.pkl"))
        assert len(files) == 1
        second = build_indexes(db, params, cache_dir=tmp_path)
        assert set(second.frequent) == set(first.frequent)
        assert set(second.difs) == set(first.difs)
        for code, frag in first.frequent.items():
            assert second.frequent[code].fsg_ids == frag.fsg_ids

    def test_fingerprint_depends_on_params(self, db):
        fp1 = database_fingerprint(db, MiningParams(0.2, 2, 4))
        fp2 = database_fingerprint(db, MiningParams(0.3, 2, 4))
        assert fp1 != fp2

    def test_fingerprint_depends_on_contents(self, db):
        other = small_database(seed=5, num_graphs=20, max_nodes=6)
        params = MiningParams(0.2, 2, 4)
        assert database_fingerprint(db, params) != database_fingerprint(
            other, params
        )

    def test_fingerprint_stable(self, db):
        params = MiningParams(0.2, 2, 4)
        assert database_fingerprint(db, params) == database_fingerprint(db, params)
