"""Incremental index maintenance: exact appends, staleness detection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MiningParams
from repro.graph import GraphDatabase, is_subgraph_isomorphic
from repro.graph.generators import random_connected_graph
from repro.index import build_indexes
from repro.index.maintenance import IncrementalIndexMaintainer
from repro.testing import graph_from_spec, small_database


def _setup(seed=3, num_graphs=20):
    db = small_database(seed=seed, num_graphs=num_graphs, max_nodes=6)
    params = MiningParams(0.2, 2, 4)
    indexes = build_indexes(db, params)
    return db, IncrementalIndexMaintainer(db, indexes)


class TestAppend:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=10, deadline=None)
    def test_fsg_lists_stay_exact(self, seed):
        db, maintainer = _setup()
        rng = random.Random(seed)
        new_graph = random_connected_graph(rng, rng.randint(3, 6),
                                           rng.randint(3, 7), "ABC")
        report = maintainer.append(new_graph)
        gid = report.graph_id
        assert gid == len(db) - 1
        # every catalog entry's list is exactly right for the new graph
        for frag in maintainer.indexes.frequent.values():
            assert (gid in frag.fsg_ids) == is_subgraph_isomorphic(
                frag.graph, new_graph
            )
        for frag in maintainer.indexes.difs.values():
            assert (gid in frag.fsg_ids) == is_subgraph_isomorphic(
                frag.graph, new_graph
            )

    def test_probe_structures_reflect_append(self):
        db, maintainer = _setup()
        template = db[0].copy()
        report = maintainer.append(template)
        gid = report.graph_id
        a2f = maintainer.indexes.a2f
        for code, frag in maintainer.indexes.frequent.items():
            assert a2f.fsg_ids(a2f.lookup(code)) == frag.fsg_ids
        a2i = maintainer.indexes.a2i
        for code, frag in maintainer.indexes.difs.items():
            assert a2i.fsg_ids(a2i.lookup(code)) == frag.fsg_ids
        assert maintainer.indexes.db_size == len(db)

    def test_novel_labels_mark_stale(self):
        db, maintainer = _setup()
        g = graph_from_spec({0: "Z", 1: "Z"}, [(0, 1)])
        report = maintainer.append(g)
        assert report.novel_labels == ["Z"]
        assert report.index_stale
        assert maintainer.stale

    def test_duplicate_of_existing_graph_not_stale(self):
        """Appending a copy of an existing graph only raises supports, and
        the threshold also rises with |D| — typically no partition change."""
        db, maintainer = _setup()
        report = maintainer.append(db[0].copy())
        assert report.updated_frequent > 0
        assert not report.novel_labels

    def test_size_mismatch_rejected(self):
        db, maintainer = _setup()
        other = small_database(seed=9, num_graphs=5)
        with pytest.raises(ValueError):
            IncrementalIndexMaintainer(other, maintainer.indexes)


class TestStalenessAndRebuild:
    def test_promotion_detected_and_rebuild_fixes(self):
        """Repeatedly appending a motif promotes its DIFs past the threshold;
        rebuild restores the paper's partition invariants."""
        db, maintainer = _setup()
        # find a DIF with nonzero support and a concrete witness graph
        candidates = [
            frag for frag in maintainer.indexes.difs.values()
            if frag.support > 0 and frag.size >= 1
        ]
        assert candidates
        motif = max(candidates, key=lambda f: f.support).graph
        stale_seen = False
        for _ in range(12):
            report = maintainer.append(motif.copy())
            if report.promoted_difs:
                stale_seen = True
                break
        assert stale_seen, "repeated appends must eventually promote a DIF"
        assert maintainer.stale
        rebuilt = maintainer.rebuild()
        assert not maintainer.stale
        threshold = rebuilt.params.absolute_support(len(db))
        assert all(f.support >= threshold for f in rebuilt.frequent.values())
        assert all(f.support < threshold for f in rebuilt.difs.values())

    def test_queries_correct_after_appends(self):
        """End-to-end: a PRAGUE engine over the maintained index answers a
        query involving the appended graph correctly (when not stale)."""
        from repro.baselines.naive import naive_containment_search
        from repro.core import PragueEngine
        from repro.testing import drive_engine, sample_subgraph

        db, maintainer = _setup()
        rng = random.Random(4)
        new_graph = db[1].copy()
        report = maintainer.append(new_graph)
        if report.index_stale:
            maintainer.rebuild()
        q = sample_subgraph(rng, db, 2, 3)
        engine = PragueEngine(db, maintainer.indexes)
        drive_engine(engine, q)
        assert engine.run().results.exact_ids == naive_containment_search(q, db)
