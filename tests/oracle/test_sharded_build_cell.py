"""Oracle matrix cell: sharded-built indexes answer like serial-built ones.

The sharded-build equivalence property (`tests/index/test_sharded_build.py`)
is stated at the catalog level; this cell pins it at the *answer* level,
where it actually matters: the same fuzzed formulation trace is replayed
against a corpus whose indexes were built serially and one whose indexes
came out of the sharded pipeline, across bitset × workers × arena cells, and
the observation streams must be identical step for step.
"""

import warnings

import pytest

import repro.core.pool as pool_mod
from repro.index import build_indexes
from repro.oracle.corpus import CorpusSpec, OracleCorpus
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import OracleConfig, replay_trace
from repro.testing import small_database

SPEC = CorpusSpec(seed=47)

#: Cells that exercise distinct hot paths against the sharded indexes: the
#: serial reference, the no-bitset fallback, and the pooled/arena plane.
CELLS = (
    OracleConfig(workers=1),
    OracleConfig(bitset=False, canonical_cache=False, workers=1),
    OracleConfig(workers=3, arena=True, warm_pool=True),
)


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")
    pool_mod.shutdown()
    yield
    pool_mod.shutdown()


def _corpus(workers: int, shards: int = 0) -> OracleCorpus:
    db = small_database(
        seed=SPEC.seed,
        num_graphs=SPEC.num_graphs,
        labels=SPEC.labels,
        min_nodes=SPEC.min_nodes,
        max_nodes=SPEC.max_nodes,
    )
    indexes = build_indexes(
        db, SPEC.mining_params(), workers=workers, shards=shards
    )
    return OracleCorpus(spec=SPEC, db=db, indexes=indexes)


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: c.name)
def test_sharded_indexes_replay_identically(cell):
    trace = generate_trace(seed=23, spec=SPEC)
    serial_corpus = _corpus(workers=1)
    sharded_corpus = _corpus(workers=3, shards=5)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        reference = replay_trace(trace, cell, corpus=serial_corpus)
        candidate = replay_trace(trace, cell, corpus=sharded_corpus)

    divergence = first_divergence(
        reference.observations,
        candidate.observations,
        f"serial-build/{cell.name}",
        f"sharded-build/{cell.name}",
    )
    assert divergence is None
