"""End-to-end harness behaviour: clean sweeps stay clean, planted bugs die.

The injection tests are the oracle's own regression suite: each one
re-introduces a representative hot-path bug (a bitset-only candidate error, a
broken SPIG-maintenance step) and asserts the harness catches it, shrinks it,
and renders a compilable reproducer.  If the oracle ever goes blind, these
fail before a real bug can slip through.
"""

from unittest import mock

import repro.core.exact as exact_mod
from repro.oracle import check_session, generate_trace, run_sweep
from repro.oracle.replay import CONFIG_MATRIX
from repro.spig.manager import SpigManager


class TestCleanSessions:
    def test_fuzzed_sessions_are_divergence_free(self):
        for seed in (0, 5, 9):
            result = check_session(generate_trace(seed))
            assert result.ok, "\n\n".join(
                d.describe() for d in result.divergences
            )

    def test_sweep_reports_and_manifest(self):
        report = run_sweep(sessions=4, base_seed=0, shrink=False)
        assert report.ok
        assert report.sessions == 4
        assert report.total_replays == 4 * len(CONFIG_MATRIX)
        manifest = report.manifest()
        assert manifest["divergence_free"] is True
        assert manifest["failures"] == []
        assert len(manifest["configs"]) == len(CONFIG_MATRIX)
        assert manifest["oracles"] == ["naive-baseline", "fresh-replay"]
        assert manifest["total_steps"] == report.total_steps

    def test_progress_callback_fires(self):
        lines = []
        run_sweep(sessions=10, base_seed=0, progress=lines.append)
        assert lines  # one update per 10 clean sessions


def _first_diverging_seed(max_seed=30):
    for seed in range(max_seed):
        trace = generate_trace(seed)
        result = check_session(trace)
        if not result.ok:
            return trace, result
    return None, None


class TestInjectedBitsetBug:
    """A candidate bug on the bitset path only — the config matrix's job."""

    def _patched(self):
        real = exact_mod._phi_upsilon_bits

        def buggy(vertex, indexes, db_bits):
            return real(vertex, indexes, db_bits) & ~1  # drop graph 0

        return mock.patch.object(exact_mod, "_phi_upsilon_bits", buggy)

    def test_caught_shrunk_and_rendered(self):
        with self._patched():
            trace, result = _first_diverging_seed()
            assert trace is not None, "injected bug was not caught"
            kinds = {d.kind for d in result.divergences}
            assert "config" in kinds  # bitset=0 cells disagree with reference

            from repro.oracle import format_reproducer, shrink_trace

            shrunk = shrink_trace(
                trace, lambda t: not check_session(t).ok
            )
            assert len(shrunk) <= len(trace)
            assert not check_session(shrunk).ok
            source = format_reproducer(
                shrunk, check_session(shrunk).divergences
            )
            compile(source, "<reproducer>", "exec")

    def test_clean_again_once_the_bug_is_gone(self):
        # The same seeds must pass on the unpatched tree: the detection above
        # is attributable to the injection, nothing else.
        trace, _ = None, None
        with self._patched():
            trace, _ = _first_diverging_seed()
        assert trace is not None
        assert check_session(trace).ok


class TestInjectedMaintenanceBug:
    """Broken deletion upkeep — the fresh-replay oracle's job."""

    def test_caught(self):
        # Find a session that actually deletes an edge and survives to Run.
        trace = next(
            t for t in (generate_trace(s) for s in range(30))
            if any(a.op in ("delete_edge", "delete_edges")
                   for a in t.actions)
        )
        assert check_session(trace).ok
        with mock.patch.object(
            SpigManager, "on_delete_edge", lambda self, edge_id: None
        ):
            result = check_session(trace)
        assert not result.ok
