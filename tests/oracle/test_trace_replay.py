"""The oracle's foundation: deterministic traces and tolerant replay."""

import pytest

from repro.exceptions import ReproError
from repro.oracle import generate_trace, replay_trace
from repro.oracle.corpus import DEFAULT_SPEC, corpus_for
from repro.oracle.replay import CONFIG_MATRIX, REFERENCE_CONFIG, OracleConfig
from repro.oracle.trace import SessionTrace, TraceAction, snapshot_to_graph


class TestFuzzer:
    def test_same_seed_same_trace(self):
        assert generate_trace(11) == generate_trace(11)

    def test_different_seeds_differ(self):
        traces = {generate_trace(seed).actions for seed in range(6)}
        assert len(traces) > 1

    def test_every_trace_ends_with_run(self):
        for seed in range(8):
            trace = generate_trace(seed)
            assert trace.actions[-1].op == "run"

    def test_generated_actions_are_valid_under_reference(self):
        # The fuzzer records only engine-accepted gestures, so the reference
        # replay must complete without a single error observation.
        for seed in range(8):
            session = replay_trace(generate_trace(seed))
            errors = [o for o in session.observations if o["error"]]
            assert errors == [], f"seed {seed}: {errors}"


class TestReplay:
    def test_replay_is_deterministic(self):
        trace = generate_trace(3)
        a = replay_trace(trace).observations
        b = replay_trace(trace).observations
        assert a == b

    def test_observations_carry_no_timings(self):
        session = replay_trace(generate_trace(0))
        for obs in session.observations:
            assert not any("second" in key for key in obs)

    def test_invalid_gesture_is_recorded_not_raised(self):
        trace = SessionTrace(
            spec=DEFAULT_SPEC,
            sigma=2,
            actions=(
                TraceAction("add_node", ("a", "A")),
                TraceAction("add_node", ("b", "B")),
                TraceAction("delete_edge", (99,)),     # nothing to delete
                TraceAction("add_edge", ("a", "b", None)),
                TraceAction("run", ()),
            ),
        )
        session = replay_trace(trace)
        assert session.observations[2]["error"] is not None
        # ...and the session continued past the failure.
        assert session.observations[3]["error"] is None
        assert session.observations[4]["op"] == "run"

    def test_fragment_snapshot_rebuilds_isomorphic_graph(self):
        from repro.graph.canonical import canonical_code

        session = replay_trace(generate_trace(4))
        final = session.observations[-1]["fragment"]
        rebuilt = snapshot_to_graph(final)
        assert canonical_code(rebuilt) == \
            canonical_code(session.engine.query.graph())

    def test_unknown_op_rejected(self):
        from repro.core.prague import PragueEngine
        from repro.oracle.trace import apply_action

        corpus = corpus_for(DEFAULT_SPEC)
        engine = PragueEngine(corpus.db, corpus.indexes)
        with pytest.raises(ValueError, match="unknown trace op"):
            apply_action(engine, TraceAction("explode", ()))


class TestConfigMatrix:
    def test_matrix_covers_all_cells(self):
        # 8 hot-path cells (bitset × cache × workers) plus the 3 pool-plane
        # cells (arena/warm-pool variations at workers=3).
        assert len(set(CONFIG_MATRIX)) == 11
        assert REFERENCE_CONFIG in CONFIG_MATRIX
        assert {c.bitset for c in CONFIG_MATRIX} == {True, False}
        assert {c.canonical_cache for c in CONFIG_MATRIX} == {True, False}
        assert {c.workers for c in CONFIG_MATRIX} == {1, 3}
        pooled = [c for c in CONFIG_MATRIX if c.workers > 1]
        assert {(c.arena, c.warm_pool) for c in pooled} == {
            (True, True), (True, False), (False, True), (False, False)
        }

    def test_applied_restores_environment(self, monkeypatch):
        import os

        from repro.oracle.replay import applied

        monkeypatch.setenv("REPRO_BITSET", "1")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with applied(OracleConfig(bitset=False, workers=5)):
            assert os.environ["REPRO_BITSET"] == "0"
            assert os.environ["REPRO_WORKERS"] == "5"
        assert os.environ["REPRO_BITSET"] == "1"
        assert "REPRO_WORKERS" not in os.environ

    def test_trace_without(self):
        trace = generate_trace(1)
        cut = trace.without([0, 2])
        assert len(cut) == len(trace) - 2
        assert cut.actions[0] == trace.actions[1]
