"""Divergence location, delta-debugging shrinks, reproducer rendering."""

from repro.oracle import first_divergence, format_reproducer, shrink_trace
from repro.oracle.corpus import DEFAULT_SPEC
from repro.oracle.diff import diff_observations
from repro.oracle.trace import SessionTrace, TraceAction


def _obs(step: int, rq=(1, 2)) -> dict:
    return {"op": f"op{step}", "rq": tuple(rq), "error": None}


class TestDiff:
    def test_identical_streams_have_no_divergence(self):
        stream = [_obs(i) for i in range(4)]
        assert first_divergence(stream, list(stream), "a", "b") is None

    def test_earliest_differing_step_wins(self):
        left = [_obs(0), _obs(1), _obs(2)]
        right = [_obs(0), _obs(1, rq=(1, 2, 3)), _obs(2, rq=())]
        d = first_divergence(left, right, "ref", "alt")
        assert d is not None
        assert d.step == 1
        assert d.left == "ref" and d.right == "alt"
        assert any("rq" in line for line in d.details)

    def test_length_mismatch_is_a_divergence(self):
        left = [_obs(0), _obs(1)]
        d = first_divergence(left, left[:1], "ref", "alt")
        assert d is not None
        assert "length" in d.details[0]

    def test_diff_observations_names_all_differing_keys(self):
        a = {"x": 1, "y": 2, "z": 3}
        b = {"x": 1, "y": 9, "w": 0}
        keys = {line.split(":")[0] for line in diff_observations(a, b)}
        assert keys == {"y", "z", "w"}


def _marker_trace(n: int, marker_at: int) -> SessionTrace:
    actions = tuple(
        TraceAction("add_node", (f"n{i}", "A")) if i != marker_at
        else TraceAction("relabel_node", ("MARKER", "A"))
        for i in range(n)
    )
    return SessionTrace(spec=DEFAULT_SPEC, sigma=1, actions=actions)


def _has_marker(trace: SessionTrace) -> bool:
    return any(a.op == "relabel_node" for a in trace.actions)


class TestShrink:
    def test_shrinks_to_single_culprit_action(self):
        trace = _marker_trace(12, marker_at=7)
        shrunk = shrink_trace(trace, _has_marker)
        assert len(shrunk) == 1
        assert shrunk.actions[0].op == "relabel_node"

    def test_non_failing_trace_is_returned_unchanged(self):
        trace = _marker_trace(5, marker_at=2).without([2])
        assert shrink_trace(trace, _has_marker) is trace

    def test_check_budget_bounds_the_loop(self):
        calls = []

        def failing(t):
            calls.append(1)
            return _has_marker(t)

        shrink_trace(_marker_trace(20, marker_at=0), failing, max_checks=5)
        assert len(calls) <= 6  # initial check + the budget


class TestReproducer:
    def test_output_is_valid_python(self):
        trace = _marker_trace(3, marker_at=1)
        source = format_reproducer(trace, [])
        compile(source, "<reproducer>", "exec")  # must not raise

    def test_output_contains_trace_and_assertion(self):
        trace = _marker_trace(2, marker_at=0)
        source = format_reproducer(trace, [])
        assert "TraceAction('relabel_node', ('MARKER', 'A'))" in source
        assert "check_session(trace)" in source
        assert "def test_oracle_regression_" in source

    def test_divergence_summary_rendered_as_comments(self):
        from repro.oracle.diff import Divergence

        trace = _marker_trace(1, marker_at=0)
        d = Divergence(kind="config", step=0, op="run",
                       left="ref", right="alt", details=["rq: (1,) != (2,)"])
        source = format_reproducer(trace, [d])
        assert "# [config] ref vs alt at step 0 (run)" in source
        compile(source, "<reproducer>", "exec")
