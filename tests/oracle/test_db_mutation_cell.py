"""``db.add()`` between replays: invalidation must preserve answer parity.

The matrix cell the arena index-plane bugfix needs end to end: grow the
database after the arena was built and warmed, then prove (a) the pooled
replay still matches the serial reference observation-for-observation and
(b) the rebuilt arena still carries the A2F/A2I plane.

The corpus is a private replica — the shared ``corpus_for`` cache must never
see a mutated database.
"""

import warnings

import pytest

import repro.core.pool as pool_mod
from repro.index import build_indexes
from repro.oracle.corpus import CorpusSpec, OracleCorpus
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import OracleConfig, replay_trace
from repro.testing import small_database


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")
    pool_mod.shutdown()
    yield
    pool_mod.shutdown()


def _private_corpus(spec: CorpusSpec) -> OracleCorpus:
    db = small_database(
        seed=spec.seed,
        num_graphs=spec.num_graphs,
        labels=spec.labels,
        min_nodes=spec.min_nodes,
        max_nodes=spec.max_nodes,
    )
    return OracleCorpus(
        spec=spec, db=db, indexes=build_indexes(db, spec.mining_params())
    )


def test_db_add_invalidation_keeps_pooled_run_parity():
    spec = CorpusSpec(seed=31)
    trace = generate_trace(seed=17, spec=spec)
    corpus = _private_corpus(spec)
    pooled = OracleConfig(workers=3, arena=True, warm_pool=True)

    # First pooled replay: registers the index plane (engine construction)
    # and leaves a published arena behind.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        replay_trace(trace, pooled, corpus=corpus)
    arena = pool_mod.arena_for(corpus.db)
    if arena is None:
        pytest.skip("shared memory unavailable on this platform")
    assert arena.has_section("a2f")

    corpus.db.add(corpus.db[0].copy())  # invalidates on next arena_for

    reference = replay_trace(trace, OracleConfig(workers=1), corpus=corpus)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        cell = replay_trace(trace, pooled, corpus=corpus)
    divergence = first_divergence(
        reference.observations, cell.observations,
        "workers=1", cell.config.name,
    )
    assert divergence is None

    rebuilt = pool_mod.arena_for(corpus.db)
    assert rebuilt is not arena
    assert rebuilt.version != arena.version
    assert rebuilt.has_section("a2f")  # the plane survived invalidation
