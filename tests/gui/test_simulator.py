"""Simulated participants and the formulation protocol of Section VIII-A."""

import random

import pytest

from repro.core import QuerySpec
from repro.gui import (
    SimulatedUser,
    UserProfile,
    VisualInterface,
    average_srt,
    participant_panel,
)
from repro.testing import sample_subgraph


@pytest.fixture
def spec(small_db):
    rng = random.Random(0)
    q = sample_subgraph(rng, small_db, 3, 3)
    from repro.datasets import spec_from_graph

    return spec_from_graph("sim-test", q)


@pytest.fixture
def interface_factory(small_db, small_indexes):
    def factory():
        iface = VisualInterface()
        iface.open_database(small_db, small_indexes, sigma=2)
        return iface

    return factory


class TestUserProfile:
    def test_latency_at_least_minimum(self):
        user = SimulatedUser(UserProfile(mean_edge_seconds=0.1, seed=1))
        for _ in range(50):
            assert user._draw_latency() >= user.profile.min_edge_seconds

    def test_panel_has_eight_volunteers(self):
        panel = participant_panel()
        assert len(panel) == 8
        names = {u.profile.name for u in panel}
        assert len(names) == 8

    def test_panel_deterministic(self):
        p1 = participant_panel(seed=5)
        p2 = participant_panel(seed=5)
        assert [u.profile.mean_edge_seconds for u in p1] == [
            u.profile.mean_edge_seconds for u in p2
        ]


class TestFormulation:
    def test_formulate_produces_trace(self, interface_factory, spec):
        user = SimulatedUser(UserProfile(seed=2))
        outcome = user.formulate(interface_factory(), spec)
        assert outcome.query == "sim-test"
        assert len(outcome.edge_latencies) == spec.size
        assert outcome.formulation_seconds >= 2.0 * spec.size
        assert outcome.srt_seconds >= 0

    def test_formulate_answers_dialogue(self, small_db, small_indexes):
        """A query whose Rq empties is completed as a similarity query."""
        iface = VisualInterface()
        iface.open_database(small_db, small_indexes, sigma=2)
        labels = small_db.node_label_universe()
        spec = QuerySpec(
            name="dense",
            nodes={i: labels[0] for i in range(5)},
            edges=tuple(
                (i, j) for i in range(5) for j in range(i + 1, 5)
            ),
        )
        user = SimulatedUser(UserProfile(seed=3))
        outcome = user.formulate(iface, spec, accept_similarity=True)
        assert outcome.run_report is not None

    def test_average_srt_protocol(self, interface_factory, spec):
        users = participant_panel(count=2, seed=9)
        avg = average_srt(interface_factory, spec, users, repetitions=2)
        assert avg >= 0.0
