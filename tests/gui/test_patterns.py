"""Canned patterns (footnote 1's future-work extension)."""

import pytest

from repro.baselines.naive import naive_containment_search
from repro.core import PragueEngine
from repro.exceptions import QueryError, SessionError
from repro.gui import VisualInterface
from repro.gui.patterns import (
    CannedPattern,
    amine_group,
    benzene_ring,
    default_pattern_library,
    pattern_library_for,
    thioether_bridge,
)
from repro.testing import drive_engine, graph_from_spec


class TestPatternLibrary:
    def test_benzene_is_a_six_ring(self):
        pattern = benzene_ring()
        g = pattern.graph
        assert g.num_nodes == 6
        assert g.num_edges == 6
        assert g.node_labels() == {"C": 6}
        assert all(g.degree(n) == 2 for n in g.nodes())

    def test_all_patterns_connected(self):
        for pattern in default_pattern_library():
            assert pattern.graph.is_connected()
            assert pattern.size >= 1

    def test_library_filtered_by_universe(self, small_db):
        # small_db's universe is {A, B, C}: only the all-carbon patterns
        # survive the Panel 2 constraint ("C" happens to be in the universe).
        names = {p.name for p in pattern_library_for(small_db)}
        assert names == {"benzene ring"}

    def test_library_for_molecular_corpus(self):
        from repro.datasets import generate_aids_like

        db = generate_aids_like(30, seed=1)
        library = pattern_library_for(db)
        assert any(p.name == "benzene ring" for p in library)


class TestEnginePatternDrop:
    def _pattern(self):
        return CannedPattern(
            name="ab-triangle", description="",
            graph=graph_from_spec(
                {0: "A", 1: "B", 2: "A"}, [(0, 1), (1, 2), (2, 0)]
            ),
        )

    def test_pattern_starts_a_query(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        reports = engine.add_pattern(self._pattern())
        assert len(reports) == 3
        assert engine.query.num_edges == 3
        assert len(engine.manager.spigs) == 3  # one SPIG per edge

    def test_pattern_equivalent_to_manual_formulation(
        self, small_db, small_indexes
    ):
        engine = PragueEngine(small_db, small_indexes)
        engine.add_pattern(self._pattern())
        res = engine.run()
        truth = naive_containment_search(engine.query.graph(), small_db)
        if truth:
            assert res.results.exact_ids == truth

    def test_attach_required_on_nonempty_query(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, graph_from_spec({0: "A", 1: "B"}, [(0, 1)]))
        with pytest.raises(QueryError):
            engine.add_pattern(self._pattern())

    def test_attach_fuses_on_existing_node(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, graph_from_spec({"x": "A", "y": "B"}, [("x", "y")]))
        engine.add_pattern(self._pattern(), attach={0: "x"})
        g = engine.query.graph()
        assert g.num_edges == 4
        assert g.degree("x") == 3  # original edge + two triangle edges

    def test_attach_label_mismatch_rejected(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        drive_engine(engine, graph_from_spec({"x": "C", "y": "B"}, [("x", "y")]))
        with pytest.raises(QueryError):
            engine.add_pattern(self._pattern(), attach={0: "x"})

    def test_disconnected_pattern_rejected(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes)
        bad = graph_from_spec(
            {0: "A", 1: "A", 2: "B", 3: "B"}, [(0, 1), (2, 3)]
        )
        with pytest.raises(QueryError):
            engine.add_pattern(bad)


class TestCanvasPatternDrop:
    def test_drop_pattern_on_canvas(self, small_db, small_indexes):
        iface = VisualInterface()
        iface.open_database(small_db, small_indexes, sigma=2)
        pattern = CannedPattern(
            name="ab", description="",
            graph=graph_from_spec({0: "A", 1: "B"}, [(0, 1)]),
        )
        reports = iface.canvas.drop_pattern(pattern, position=(5.0, 5.0))
        assert len(reports) == 1
        assert len(iface.canvas.nodes) == 2
        # subsequent manual drops do not collide with pattern node ids
        extra = iface.canvas.drop_node("C")
        assert extra not in [r.edge_id for r in reports]
        assert iface.engine.query.node_label(extra) == "C"

    def test_foreign_pattern_label_rejected(self, small_db, small_indexes):
        iface = VisualInterface()
        iface.open_database(small_db, small_indexes)
        with pytest.raises(SessionError):
            iface.canvas.drop_pattern(thioether_bridge())  # S/C not in A/B/C
