"""Simulated users who answer the option dialogue by *modifying* the query."""

import pytest

from repro.config import MiningParams
from repro.core import QuerySpec
from repro.graph import GraphDatabase
from repro.gui import SimulatedUser, UserProfile, VisualInterface
from repro.index import build_indexes
from repro.testing import graph_from_spec


@pytest.fixture(scope="module")
def gap_setup():
    """A-A and B-B corpora: A-B is palette-legal but provably unmatched."""
    graphs = []
    for _ in range(6):
        graphs.append(graph_from_spec({0: "A", 1: "A", 2: "A"},
                                      [(0, 1), (1, 2)]))
        graphs.append(graph_from_spec({0: "B", 1: "B", 2: "B"},
                                      [(0, 1), (1, 2)]))
    db = GraphDatabase(graphs)
    indexes = build_indexes(db, MiningParams(0.3, 2, 3))
    return db, indexes


def _interface(db, indexes):
    iface = VisualInterface()
    iface.open_database(db, indexes, sigma=1)
    return iface


class TestModifyingUser:
    def test_user_accepts_suggestion(self, gap_setup):
        db, indexes = gap_setup
        spec = QuerySpec(
            name="bad-bridge",
            nodes={0: "A", 1: "A", 2: "B"},
            edges=((0, 1), (1, 2)),  # the A-B bridge empties Rq
        )
        user = SimulatedUser(UserProfile(seed=4))
        outcome = user.formulate(
            _interface(db, indexes), spec, accept_similarity=False
        )
        # The modifying user removed the A-B bridge, so Run returns exact
        # matches of the surviving A-A fragment.
        assert outcome.run_report.results.exact_ids

    def test_user_accepts_similarity(self, gap_setup):
        db, indexes = gap_setup
        spec = QuerySpec(
            name="bad-bridge",
            nodes={0: "A", 1: "A", 2: "B"},
            edges=((0, 1), (1, 2)),
        )
        user = SimulatedUser(UserProfile(seed=4))
        outcome = user.formulate(
            _interface(db, indexes), spec, accept_similarity=True
        )
        results = outcome.run_report.results
        assert not results.exact_ids
        assert results.similar  # approximate matches at distance 1
        assert all(m.distance == 1 for m in results.similar)
