"""The headless visual interface (Figure 2's panels and gesture idioms)."""

import pytest

from repro.core.actions import QueryStatus
from repro.exceptions import SessionError
from repro.gui import VisualInterface


@pytest.fixture
def interface(small_db, small_indexes):
    iface = VisualInterface()
    iface.open_database(small_db, small_indexes, sigma=2)
    return iface


class TestPanels:
    def test_palette_is_sorted_universe(self, interface, small_db):
        assert interface.palette.labels() == small_db.node_label_universe()

    def test_palette_membership(self, interface):
        assert "A" in interface.palette
        assert "Z" not in interface.palette

    def test_requires_open_database(self):
        iface = VisualInterface()
        with pytest.raises(SessionError):
            iface.new_canvas()
        with pytest.raises(SessionError):
            _ = iface.engine

    def test_new_canvas_resets(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A")
        b = canvas.drop_node("A")
        canvas.draw_edge(a, b)
        fresh = interface.new_canvas()
        assert fresh is not canvas
        assert interface.engine.query.num_edges == 0
        assert interface.results_panel.results is None


class TestCanvasGestures:
    def test_drop_node_rejects_foreign_label(self, interface):
        with pytest.raises(SessionError):
            interface.canvas.drop_node("Z")

    def test_left_right_click_draws_edge(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A", position=(10, 10))
        b = canvas.drop_node("B", position=(20, 20))
        canvas.left_click(a)
        report = canvas.right_click(b)
        assert report.edge_id == 1
        assert interface.engine.query.num_edges == 1

    def test_right_click_without_selection(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A")
        with pytest.raises(SessionError):
            canvas.right_click(a)

    def test_click_unknown_node(self, interface):
        with pytest.raises(SessionError):
            interface.canvas.left_click(99)
        interface.canvas.drop_node("A")
        interface.canvas.left_click(1)
        with pytest.raises(SessionError):
            interface.canvas.right_click(99)

    def test_status_reflects_engine(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A")
        b = canvas.drop_node("B")
        canvas.draw_edge(a, b)
        assert canvas.status in (QueryStatus.FREQUENT, QueryStatus.INFREQUENT,
                                 QueryStatus.SIMILAR)

    def test_node_positions_recorded(self, interface):
        a = interface.canvas.drop_node("A", position=(3.5, 4.5))
        assert interface.canvas.nodes[a].position == (3.5, 4.5)


class TestDialogueAndRun:
    @pytest.fixture
    def gap_interface(self):
        """A corpus where labels A and B both exist but never bond: drawing
        an A-B edge is palette-legal yet provably unmatched (a 0-support
        DIF), so the option dialogue must pop."""
        from repro.config import MiningParams
        from repro.graph import GraphDatabase
        from repro.index import build_indexes
        from repro.testing import graph_from_spec

        graphs = []
        for _ in range(6):
            graphs.append(graph_from_spec({0: "A", 1: "A"}, [(0, 1)]))
            graphs.append(graph_from_spec({0: "B", 1: "B"}, [(0, 1)]))
        db = GraphDatabase(graphs)
        indexes = build_indexes(db, MiningParams(0.3, 2, 3))
        iface = VisualInterface()
        iface.open_database(db, indexes, sigma=1)
        return iface

    def _draw_unmatched(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A")
        b = canvas.drop_node("B")
        canvas.draw_edge(a, b)
        return interface.pending_dialogue

    def test_dialogue_pops_on_empty_rq(self, gap_interface):
        assert self._draw_unmatched(gap_interface)

    def test_dialogue_modify_answer(self, gap_interface):
        assert self._draw_unmatched(gap_interface)
        suggestion = gap_interface.dialogue_suggestion()
        if suggestion is not None:
            report = gap_interface.answer_modify()
            assert report.edge_id == suggestion.edge_id
        else:
            # A one-edge query has no suggestible deletion (the empty query
            # is not a fragment); the user picks the edge explicitly.
            report = gap_interface.answer_modify(1)
            assert report.edge_id == 1
        assert not gap_interface.pending_dialogue

    def test_dialogue_similarity_answer(self, gap_interface):
        assert self._draw_unmatched(gap_interface)
        report = gap_interface.answer_similarity()
        assert gap_interface.engine.sim_flag
        assert report.candidate_count is not None

    def test_run_displays_results(self, interface):
        canvas = interface.canvas
        a = canvas.drop_node("A")
        b = canvas.drop_node("B")
        canvas.draw_edge(a, b)
        report = interface.run()
        assert interface.results_panel.results is report.results
