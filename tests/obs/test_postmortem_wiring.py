"""Post-mortem wiring: failures arrive with their flight recording attached.

Two failure paths must each produce a renderable bundle without anyone
asking for one: an oracle divergence (the bundle rides inside the sweep
manifest) and a verification-pool fallback (the bundle lands in
``REPRO_POSTMORTEM_DIR``).  Both are rendered back through
``python -m repro postmortem`` to close the loop.
"""

import json
import os
import warnings
from unittest import mock

import pytest

import repro.core.exact as exact_mod
import repro.core.verification as verif
from repro import obs
from repro.cli import main
from repro.obs.recorder import RECORDER
from repro.oracle import check_session, generate_trace


@pytest.fixture(autouse=True)
def _recorder_on():
    RECORDER.force(True)
    RECORDER.reset()
    # Earlier fallback tests may have consumed this exception type's
    # one-bundle-per-type slot (the postmortem rate limiter); each test
    # here asserts on its own bundle, so start from a clean slate.
    verif.reset_postmortem_limiter()
    yield
    RECORDER.force(None)
    RECORDER.reset()
    obs.sync_env()


def _chunk_worker(payload):
    """Module-level (hence picklable) worker for the fallback test."""
    chunk, transform = payload
    return [transform(gid) for gid in chunk]


class TestPoolFallbackBundle:
    def test_fallback_writes_a_renderable_bundle(self, tmp_path, capsys):
        with mock.patch.dict(
            os.environ, {"REPRO_POSTMORTEM_DIR": str(tmp_path)}
        ):
            with pytest.warns(RuntimeWarning, match="serial"):
                out = verif._run_batch(
                    _chunk_worker,
                    lambda chunk: (chunk, lambda g: g),  # lambda: unpicklable
                    list(range(32)),
                    workers=2,
                )
        assert out == list(range(32))
        bundles = sorted(tmp_path.glob("postmortem-*.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text())
        assert bundle["schema"] == 2
        assert bundle["kind"] == "postmortem"
        kinds = [e["kind"] for e in bundle["events"]]
        assert "pool.run" in kinds
        assert "pool.fallback" in kinds
        fallback = next(e for e in bundle["events"]
                        if e["kind"] == "pool.fallback")
        assert "traceback" in fallback

        assert main(["postmortem", str(bundles[0])]) == 0
        rendered = capsys.readouterr().out
        assert "pool-fallback" in rendered
        assert "pool.run" in rendered

    def test_no_dir_means_no_files(self, tmp_path):
        with mock.patch.dict(os.environ, {"REPRO_POSTMORTEM_DIR": ""}):
            with pytest.warns(RuntimeWarning, match="serial"):
                verif._run_batch(
                    _chunk_worker,
                    lambda chunk: (chunk, lambda g: g),
                    list(range(8)),
                    workers=2,
                )
        assert list(tmp_path.iterdir()) == []


class TestDivergenceBundle:
    def _patched_bitset_bug(self):
        real = exact_mod._phi_upsilon_bits

        def buggy(vertex, indexes, db_bits):
            return real(vertex, indexes, db_bits) & ~1  # drop graph 0

        return mock.patch.object(exact_mod, "_phi_upsilon_bits", buggy)

    def _first_divergent_result(self, max_seed=30):
        for seed in range(max_seed):
            result = check_session(generate_trace(seed))
            if not result.ok:
                return result
        return None

    def test_divergence_embeds_a_renderable_recording(self, tmp_path,
                                                      capsys):
        with self._patched_bitset_bug():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = self._first_divergent_result()
        assert result is not None, "injected bug was not caught"
        bundle = result.flight_recording
        assert bundle is not None
        assert bundle["kind"] == "postmortem"
        assert bundle["reason"] == "oracle-divergence"
        assert bundle["seed"] == result.trace.seed
        assert bundle["divergences"]  # the verdicts ride in the bundle

        path = tmp_path / "divergence.json"
        path.write_text(json.dumps(bundle, default=str))
        assert main(["postmortem", str(path)]) == 0
        assert "oracle-divergence" in capsys.readouterr().out

    def test_clean_sessions_carry_no_recording(self):
        result = check_session(generate_trace(seed=0))
        assert result.ok
        assert result.flight_recording is None

    def test_disabled_recorder_yields_no_recording(self):
        RECORDER.force(False)
        with self._patched_bitset_bug():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = self._first_divergent_result()
        assert result is not None
        assert result.flight_recording is None
