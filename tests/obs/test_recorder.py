"""Flight recorder: ring bound, env gating, dedup, and answer-neutrality.

The recorder is the always-on black box; these tests pin its four promises:
the ring is bounded (oldest events drop, drop count reported), the
``REPRO_RECORDER``/``REPRO_RECORDER_SIZE`` knobs gate it per action,
``transition`` compresses streaks to flips, and — the one that matters most
— turning it on or off never changes a session's observations.
"""

import json
import os
from unittest import mock

from repro import obs
from repro.obs.recorder import RECORDER, FlightRecorder, render_postmortem
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import REFERENCE_CONFIG, replay_trace


def test_ring_is_bounded_and_reports_drops():
    r = FlightRecorder(size=4)
    r.force(True)
    for i in range(10):
        r.record("tick", i=i)
    events = r.snapshot()
    assert len(events) == 4
    assert [e["i"] for e in events] == [6, 7, 8, 9]
    bundle = r.dump(reason="test")
    assert bundle["dropped"] == 6
    assert bundle["capacity"] == 4


def test_disabled_recorder_is_silent():
    r = FlightRecorder(size=8)
    r.force(False)
    r.record("tick")
    r.transition("cache", "hit")
    r.record_exception("boom", ValueError("x"))
    assert r.snapshot() == []
    assert r.calls == 0


def test_transition_records_only_flips():
    r = FlightRecorder(size=32)
    r.force(True)
    for state in ("hit", "hit", "hit", "miss", "miss", "hit"):
        r.transition("cache", state)
    events = r.snapshot()
    assert [(e["from"], e["to"]) for e in events] == [
        (None, "hit"), ("hit", "miss"), ("miss", "hit")
    ]
    assert r.calls == 6  # every probe counts toward overhead volume


def test_exception_events_carry_the_traceback():
    r = FlightRecorder(size=8)
    r.force(True)
    try:
        raise RuntimeError("pool died")
    except RuntimeError as exc:
        r.record_exception("pool.fallback", exc, chunks=3)
    (event,) = r.snapshot()
    assert event["error"] == "RuntimeError: pool died"
    assert "RuntimeError: pool died" in event["traceback"]
    assert event["chunks"] == 3


def test_dump_render_roundtrip_through_json():
    r = FlightRecorder(size=8)
    r.force(True)
    r.record("action.start", op="new")
    r.transition("a2f.lookup", "hit")
    try:
        raise ValueError("bad option")
    except ValueError as exc:
        r.record_exception("replay.exception", exc)
    bundle = json.loads(json.dumps(r.dump(reason="unit-test", seed=42)))
    assert bundle["schema"] == 2
    assert bundle["kind"] == "postmortem"
    assert bundle["seed"] == 42
    text = render_postmortem(bundle)
    assert "unit-test" in text
    assert "action.start" in text
    assert "op=new" in text
    assert "| " in text  # traceback lines are indented into the timeline


def test_env_knobs_gate_the_process_recorder():
    with mock.patch.dict(os.environ, {"REPRO_RECORDER": "0"}):
        obs.sync_env()
        assert not RECORDER.enabled
        before = len(RECORDER.snapshot())
        RECORDER.record("should.not.appear")
        assert len(RECORDER.snapshot()) == before
    with mock.patch.dict(
        os.environ, {"REPRO_RECORDER": "1", "REPRO_RECORDER_SIZE": "16"}
    ):
        obs.sync_env()
        assert RECORDER.enabled
        for i in range(40):
            RECORDER.record("fill", i=i)
        assert len(RECORDER.snapshot()) == 16
    obs.sync_env()
    RECORDER.reset()


def test_recorder_size_floor_is_sixteen():
    with mock.patch.dict(os.environ, {"REPRO_RECORDER_SIZE": "2"}):
        obs.sync_env()
        for i in range(40):
            RECORDER.record("fill", i=i)
        assert len(RECORDER.snapshot()) == 16
    obs.sync_env()
    RECORDER.reset()


def _observations(trace, recorder_env):
    with mock.patch.dict(os.environ, {"REPRO_RECORDER": recorder_env}):
        obs.sync_env()
        RECORDER.reset()
        session = replay_trace(trace, REFERENCE_CONFIG)
    obs.sync_env()
    RECORDER.reset()
    return session.observations


def test_recorder_never_changes_answers():
    """REPRO_RECORDER=0 vs =1 must be byte-identical through the differ."""
    for seed in (0, 9, 23):
        trace = generate_trace(seed=seed)
        off = _observations(trace, "0")
        on = _observations(trace, "1")
        divergence = first_divergence(
            off, on, left="REPRO_RECORDER=0", right="REPRO_RECORDER=1",
            kind="obs",
        )
        assert divergence is None, divergence
        assert len(off) == len(on) == len(trace)


def test_recorder_actually_recorded_the_on_leg():
    """Guard the guard: the enabled leg really captured engine events."""
    trace = generate_trace(seed=9)
    with mock.patch.dict(os.environ, {"REPRO_RECORDER": "1"}):
        obs.sync_env()
        RECORDER.reset()
        replay_trace(trace, REFERENCE_CONFIG)
        kinds = {e["kind"] for e in RECORDER.snapshot()}
    obs.sync_env()
    RECORDER.reset()
    assert "action.start" in kinds or "transition" in kinds
