"""Latency histograms: percentiles pinned against a brute-force reference.

The histogram's contract is *certified upper bounds*: ``percentile(p)`` must
land in the same log-scale bucket as the true nearest-rank order statistic
of everything recorded, and never exceed the observed maximum.  These tests
replay random samples through both the histogram and a plain sorted list and
check the containment property sample set by sample set.
"""

import random

import pytest

from repro.obs.histogram import (
    HISTOGRAMS,
    Histogram,
    bucket_index,
    histogram_summaries,
    observe,
    reset_histograms,
    total_observations,
)


def _reference_percentile(values, p):
    """Brute-force nearest-rank order statistic: ceil(p/100 * n)-th value."""
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))
    return ordered[int(rank) - 1]


def _random_samples(rng, n):
    """Latencies spanning the whole scale: sub-µs spikes to multi-second."""
    return [rng.choice([1e-8, 1e-6, 1e-4, 1e-2, 1.0]) * rng.uniform(0.1, 10)
            for _ in range(n)]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("p", [50, 90, 99, 100])
def test_percentile_brackets_the_true_order_statistic(seed, p):
    rng = random.Random(seed)
    values = _random_samples(rng, rng.randrange(1, 200))
    h = Histogram("prop")
    for v in values:
        h.record(v)
    truth = _reference_percentile(values, p)
    estimate = h.percentile(p)
    # Same log bucket as the truth, and never above the observed max.
    assert bucket_index(estimate) <= bucket_index(truth) + 1
    assert estimate >= min(truth, max(values) if p == 100 else estimate)
    assert estimate <= h.max
    assert truth <= h.max


@pytest.mark.parametrize("seed", range(8))
def test_percentiles_are_monotonic_in_p(seed):
    rng = random.Random(100 + seed)
    h = Histogram("mono")
    for v in _random_samples(rng, 150):
        h.record(v)
    points = [h.percentile(p) for p in (1, 10, 25, 50, 75, 90, 99, 100)]
    assert points == sorted(points)


def test_scalar_accumulators_match_reference():
    values = [0.003, 0.0001, 2.5, 0.003, 0.9]
    h = Histogram("scalars")
    for v in values:
        h.record(v)
    s = h.summary()
    assert s["count"] == len(values)
    assert s["sum_s"] == pytest.approx(sum(values))
    assert s["min_s"] == min(values)
    assert s["max_s"] == max(values)
    assert set(s) >= {"p50_s", "p90_s", "p99_s"}


def test_negative_observations_clamp_to_zero():
    h = Histogram("clamp")
    h.record(-1.0)
    assert h.min == 0.0
    assert h.percentile(50) == 0.0


def test_empty_and_bad_percentiles():
    h = Histogram("empty")
    assert h.percentile(99) == 0.0
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_registry_observe_and_reset():
    reset_histograms()
    try:
        observe("site.a", 0.001)
        observe("site.a", 0.002)
        observe("site.b", 0.5)
        assert total_observations() == 3
        summaries = histogram_summaries()
        assert list(summaries) == ["site.a", "site.b"]
        assert summaries["site.a"]["count"] == 2
    finally:
        reset_histograms()
    assert total_observations() == 0
    assert HISTOGRAMS == {}


def test_histograms_record_with_tracing_off():
    """The always-on contract: REPRO_TRACE=0 must not silence histograms."""
    import os
    from unittest import mock

    from repro import obs
    from repro.oracle.fuzzer import generate_trace
    from repro.oracle.replay import REFERENCE_CONFIG, replay_trace

    reset_histograms()
    try:
        with mock.patch.dict(os.environ, {"REPRO_TRACE": "0"}):
            obs.sync_env()
            replay_trace(generate_trace(seed=5), REFERENCE_CONFIG)
        assert total_observations() > 0
        assert any(name.startswith("action.") for name in HISTOGRAMS)
    finally:
        obs.sync_env()
        reset_histograms()
