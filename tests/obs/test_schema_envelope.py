"""Schema-versioned envelopes: every JSON artifact declares its format.

Trace reports, post-mortem bundles and perf trajectories all share one flat
envelope — ``{"schema": 2, "kind": ..., **payload}`` — so loaders can
dispatch on version as the formats evolve.  These tests pin the round-trip,
the version-1 (pre-envelope) compatibility path, the loud rejection of
future versions, and that the CLI writers actually use it.
"""

import json

import pytest

from repro.obs.export import (
    ENVELOPE_KINDS,
    SCHEMA_VERSION,
    envelope,
    open_envelope,
)


def test_envelope_is_flat_and_round_trips():
    payload = {"records": [1, 2], "label": "x"}
    wrapped = envelope("trajectory", payload)
    assert wrapped["schema"] == SCHEMA_VERSION
    assert wrapped["kind"] == "trajectory"
    assert wrapped["records"] == [1, 2]  # payload keys stay top-level
    back = open_envelope(json.loads(json.dumps(wrapped)),
                         expect_kind="trajectory")
    assert back == wrapped


def test_unknown_kind_rejected_at_write_time():
    with pytest.raises(ValueError, match="unknown artifact kind"):
        envelope("mystery", {})


def test_v1_artifacts_without_schema_key_are_accepted():
    legacy = {"records": []}
    out = open_envelope(legacy, expect_kind="trajectory")
    assert out["schema"] == 1
    assert out["kind"] == "trajectory"  # stamped from the caller's intent


def test_future_schema_versions_are_rejected_loudly():
    with pytest.raises(ValueError, match="newer than supported"):
        open_envelope({"schema": SCHEMA_VERSION + 1, "kind": "trajectory"})


def test_kind_mismatch_rejected_for_versioned_artifacts():
    wrapped = envelope("postmortem", {"events": []})
    with pytest.raises(ValueError, match="expected a 'trajectory'"):
        open_envelope(wrapped, expect_kind="trajectory")


@pytest.mark.parametrize("bad", [[], "x", {"schema": 0}, {"schema": "two"}])
def test_malformed_artifacts_rejected(bad):
    with pytest.raises(ValueError):
        open_envelope(bad)


def test_all_writers_share_the_declared_kinds():
    assert set(ENVELOPE_KINDS) == {
        "trace-report", "postmortem", "trajectory",
        "obs-event", "metrics-snapshot", "service-response",
        "profile",
    }


def test_trace_cli_json_carries_the_envelope(tmp_path):
    from repro.cli import main

    out = tmp_path / "report.json"
    assert main(["trace", "--seed", "3", "--json", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["kind"] == "trace-report"
    assert "spans" in payload  # flat: existing consumers keep their keys
    open_envelope(payload, expect_kind="trace-report")


def test_trajectory_file_carries_the_envelope(tmp_path):
    from repro.bench.ledger import load_trajectory, save_trajectory

    path = tmp_path / "trajectory.json"
    save_trajectory(path, [{"label": "seed"}])
    raw = json.loads(path.read_text())
    assert raw["schema"] == SCHEMA_VERSION
    assert raw["kind"] == "trajectory"
    assert load_trajectory(path) == [{"label": "seed"}]
