"""Worker telemetry parity: the pool loses no observations — or answers.

The acceptance property of the cross-process merge protocol
(:mod:`repro.obs.snapshot`): running verification with ``REPRO_WORKERS=4``
must report *identical* verification counter and histogram totals to the
serial path in ``full_snapshot()`` — every sample a pool worker records
arrives back in the parent — while the answers stay byte-identical (pinned
through the differential oracle's observation diff).

Also covers the fallback-provenance satellite: when the failure happens
*inside* a worker, the ``pool.fallback`` event carries the worker's own
traceback, not just the parent-side re-raise.
"""

import warnings

import pytest

import repro.core.verification as verif
from repro import obs
from repro.core.verification import sim_verify_scan, verify_batch
from repro.datasets import generate_aids_like
from repro.graph.generators import random_connected_subgraph
from repro.obs.recorder import RECORDER
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import OracleConfig, replay_trace


@pytest.fixture(autouse=True)
def _pool_floor_16(monkeypatch):
    """Pin the pool floor below the 60-graph corpus.

    The default ``REPRO_POOL_MIN_CANDIDATES`` (64) would silently route
    these batches down the serial path — and every assertion here exists to
    watch a *pool* run (merge deltas, chunk events, worker tracebacks).
    """
    monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")


@pytest.fixture(scope="module")
def corpus():
    """60 AIDS-like graphs — comfortably above the parallel floor of 16."""
    return generate_aids_like(60, seed=7)


def _query(db, seed, edges=4):
    import random

    rng = random.Random(seed)
    while True:
        g = db[rng.randrange(len(db))]
        sub = random_connected_subgraph(rng, g, min(edges, g.num_edges))
        if sub is not None:
            return sub


def _verification_totals(snapshot):
    counters = snapshot["counters"]
    hists = snapshot["histograms"]
    return {
        "tested": counters.get("verify.tested", 0),
        "sim.tested": counters.get("verify.sim.tested", 0),
        "candidate.count": hists.get("verify.candidate", {}).get("count", 0),
        "sim.candidate.count":
            hists.get("verify.sim.candidate", {}).get("count", 0),
    }


class TestTelemetryParityAcrossWorkerCounts:
    def test_verify_batch_totals_match_serial_at_four_workers(self, corpus):
        """The headline acceptance check: with four workers,
        ``full_snapshot()`` accounts for 100% of verification observations —
        same ``verify.tested`` total, same ``verify.candidate`` sample count
        — and the answer ids are identical."""
        query = _query(corpus, seed=2012)
        ids = list(corpus.ids())

        with obs.trace():
            serial_out = verify_batch(query, ids, corpus, workers=1)
            serial = _verification_totals(obs.full_snapshot())
        with obs.trace():
            pooled_out = verify_batch(query, ids, corpus, workers=4)
            snapshot = obs.full_snapshot()
            pooled = _verification_totals(snapshot)

        assert pooled_out == serial_out
        fell_back = snapshot["counters"].get("verify.pool.fallbacks", 0)
        assert not fell_back, "pool unavailable: parity test needs a pool run"
        assert pooled["tested"] == serial["tested"] == len(ids)
        assert pooled["candidate.count"] == serial["candidate.count"]
        # the merge itself is accounted for
        assert snapshot["counters"].get("obs.merge.deltas", 0) >= 2

    def test_sim_verify_totals_match_serial_at_four_workers(self, corpus):
        fragments = [_query(corpus, seed=s, edges=3) for s in (5, 6)]
        ids = list(corpus.ids())

        with obs.trace():
            serial_out = sim_verify_scan(fragments, ids, corpus, workers=1)
            serial = _verification_totals(obs.full_snapshot())
        with obs.trace():
            pooled_out = sim_verify_scan(fragments, ids, corpus, workers=4)
            snapshot = obs.full_snapshot()
            pooled = _verification_totals(snapshot)

        assert pooled_out == serial_out
        if snapshot["counters"].get("verify.pool.fallbacks", 0):
            pytest.skip("pool unavailable on this platform")
        assert pooled["sim.tested"] == serial["sim.tested"] == len(ids)
        assert pooled["sim.candidate.count"] == serial["sim.candidate.count"]

    def test_chunk_histogram_covers_every_pool_chunk(self, corpus):
        """Worker-side ``verify.chunk`` samples merge back: one per chunk."""
        query = _query(corpus, seed=3)
        with obs.trace():
            verify_batch(query, list(corpus.ids()), corpus, workers=4)
            snapshot = obs.full_snapshot()
        if snapshot["counters"].get("verify.pool.fallbacks", 0):
            pytest.skip("pool unavailable on this platform")
        chunks = snapshot["counters"].get("verify.pool.chunks", 0)
        assert chunks >= 2
        assert snapshot["histograms"]["verify.chunk"]["count"] == chunks


class TestWorkerEventsReachTheParentRing:
    def test_pool_chunk_events_carry_provenance(self, corpus):
        query = _query(corpus, seed=4)
        RECORDER.force(True)
        RECORDER.reset()
        try:
            with obs.trace():
                verify_batch(query, list(corpus.ids()), corpus, workers=4)
                counters = obs.full_snapshot()["counters"]
                events = RECORDER.snapshot()
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        if counters.get("verify.pool.fallbacks", 0):
            pytest.skip("pool unavailable on this platform")
        chunk_events = [e for e in events if e["kind"] == "pool.chunk"]
        assert len(chunk_events) == counters.get("verify.pool.chunks")
        assert all(e.get("src", "").startswith("pid-") for e in chunk_events)
        # timestamp-ordered interleave: the ring stays sorted by t_s
        stamps = [e["t_s"] for e in events]
        assert stamps == sorted(stamps)
        # sequence numbers stay dense after the merge renumbering
        assert [e["seq"] for e in events] == list(
            range(events[0]["seq"], events[0]["seq"] + len(events))
        )


class TestAnswersByteIdenticalAcrossWorkerCounts:
    def test_oracle_observations_identical_serial_vs_four_workers(self):
        """Full-session check through the differential oracle: a replay at
        ``REPRO_WORKERS=4`` produces observation streams byte-identical to
        the serial reference — telemetry capture never perturbs answers."""
        trace = generate_trace(seed=9)
        serial = replay_trace(trace, OracleConfig(workers=1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pooled = replay_trace(trace, OracleConfig(workers=4))
        divergence = first_divergence(
            serial.observations, pooled.observations,
            "workers=1", "workers=4",
        )
        assert divergence is None


def _raising_chunk_worker(payload):
    """Module-level (picklable) worker that dies inside the pool."""
    raise ValueError(f"boom while testing chunk {payload!r}")


class TestFallbackCarriesWorkerTraceback:
    def test_worker_side_failure_attaches_the_worker_traceback(self):
        """When the chunk worker itself raises, ``multiprocessing`` hands the
        parent a RemoteTraceback — the ``pool.fallback`` event must preserve
        that worker-side text (satellite bugfix: previously only the parent's
        re-raise frame survived)."""
        RECORDER.force(True)
        RECORDER.reset()
        try:
            with pytest.warns(RuntimeWarning, match="serial"):
                with pytest.raises(ValueError, match="boom"):
                    # the serial fallback re-runs the worker and re-raises
                    verif._run_batch(
                        _raising_chunk_worker,
                        lambda chunk: list(chunk),
                        list(range(32)),
                        workers=2,
                    )
            events = RECORDER.snapshot()
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        fallback = next(e for e in events if e["kind"] == "pool.fallback")
        assert "worker_traceback" in fallback
        assert "boom while testing chunk" in fallback["worker_traceback"]
        assert "_raising_chunk_worker" in fallback["worker_traceback"]

    def test_parent_side_failure_has_no_worker_traceback(self):
        """Unpicklable payloads fail before any worker runs — no remote
        frame exists, and the event must not carry a fabricated one."""
        RECORDER.force(True)
        RECORDER.reset()
        try:
            with pytest.warns(RuntimeWarning, match="serial"):
                out = verif._run_batch(
                    _chunk_identity,
                    lambda chunk: (chunk, lambda g: g),  # lambda: unpicklable
                    list(range(32)),
                    workers=2,
                )
            events = RECORDER.snapshot()
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        assert out == list(range(32))
        fallback = next(e for e in events if e["kind"] == "pool.fallback")
        assert "worker_traceback" not in fallback
        assert "traceback" in fallback  # the parent-side trace still rides


def _chunk_identity(payload):
    chunk, transform = payload
    return [transform(gid) for gid in chunk]
