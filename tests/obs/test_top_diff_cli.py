"""The live-monitor CLIs: ``repro top`` and ``repro trace --diff``.

``top`` renders the exporter's snapshot/event files into a terminal view;
``trace --diff`` compares two saved trace reports site-by-site.  Both are
read-only consumers of artifacts other commands produce, so the tests drive
them end-to-end: export a real session, render it; save two reports, diff
them.
"""

import json
import os
from unittest import mock

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import diff_trace_reports, render_top


@pytest.fixture
def export_dir(tmp_path):
    """A directory populated by one real exporting session."""
    directory = tmp_path / "export"
    with mock.patch.dict(os.environ, {
        "REPRO_OBS_EXPORT": str(directory),
        "REPRO_OBS_EXPORT_INTERVAL": "0",
    }):
        assert main(["trace", "--seed", "1"]) == 0
    obs.sync_env()
    return directory


@pytest.fixture
def two_reports(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["trace", "--seed", "1", "--json", str(a)]) == 0
    assert main(["trace", "--seed", "2", "--json", str(b)]) == 0
    return a, b


class TestTopCli:
    def test_renders_a_live_export_directory(self, export_dir, capsys):
        assert main(["top", "--dir", str(export_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert f"pid {os.getpid()}" in out
        assert "actions:" in out
        assert "action.new" in out
        assert "cache hit rates:" in out
        assert "canonical cache" in out
        assert "recent events" in out

    def test_waits_politely_on_an_empty_directory(self, tmp_path, capsys):
        assert main(["top", "--dir", str(tmp_path), "--once"]) == 0
        assert "waiting" in capsys.readouterr().out

    def test_requires_a_directory_from_flag_or_env(self, capsys):
        with mock.patch.dict(os.environ, {"REPRO_OBS_EXPORT": ""}):
            assert main(["top", "--once"]) == 2
        assert "REPRO_OBS_EXPORT" in capsys.readouterr().err

    def test_env_knob_supplies_the_directory(self, export_dir, capsys):
        with mock.patch.dict(
            os.environ, {"REPRO_OBS_EXPORT": str(export_dir)}
        ):
            assert main(["top", "--once"]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_frames_limit_bounds_the_loop(self, export_dir, capsys):
        assert main([
            "top", "--dir", str(export_dir),
            "--frames", "2", "--interval", "0",
        ]) == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_render_top_tolerates_missing_sections(self):
        out = render_top(None, [], directory="/nowhere")
        assert "waiting" in out


class TestTraceDiffCli:
    def test_diff_renders_per_site_and_counter_deltas(self, two_reports,
                                                      capsys):
        a, b = two_reports
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff:" in out
        assert str(a) in out and str(b) in out
        assert "action.new" in out
        assert "p50" in out and "p99" in out
        assert "counters that changed:" in out
        assert "SRT ledger:" in out

    def test_diff_is_covered_structurally(self, two_reports):
        a, b = two_reports
        report_a = json.loads(a.read_text())
        report_b = json.loads(b.read_text())
        diff = diff_trace_reports(report_a, report_b)
        sites = diff["histograms"]
        assert sites  # both sessions always time their actions
        row = sites["action.new"]
        assert row["count_a"] >= 1 and row["count_b"] >= 1
        for p in (50, 90, 99):
            assert f"p{p}_a_s" in row and f"p{p}_b_s" in row
            assert f"p{p}_delta_s" in row
        assert "counters" in diff and "ledger" in diff

    def test_diff_of_a_report_with_itself_is_quiet(self, two_reports,
                                                   capsys):
        a, _ = two_reports
        assert main(["trace", "--diff", str(a), str(a)]) == 0
        out = capsys.readouterr().out
        assert "counters that changed:" not in out  # nothing changed
        assert "counters: no differences" in out

    def test_new_sites_marked_new_not_divided_by_zero(self, two_reports):
        a, b = two_reports
        report_a = json.loads(a.read_text())
        report_b = json.loads(b.read_text())
        # seed 2 runs a simquery; seed 1 does not — a genuinely new site
        diff = diff_trace_reports(report_a, report_b)
        new_rows = [
            r for r in diff["histograms"].values() if r["count_a"] == 0
        ]
        assert new_rows
        assert all(r["p50_pct"] is None for r in new_rows)

    def test_diff_rejects_non_report_artifacts(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": 2, "kind": "trajectory"}))
        with pytest.raises(ValueError):
            main(["trace", "--diff", str(bogus), str(bogus)])
