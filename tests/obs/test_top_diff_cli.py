"""The live-monitor CLIs: ``repro top`` and ``repro trace --diff``.

``top`` renders the exporter's snapshot/event files into a terminal view;
``trace --diff`` compares two saved trace reports site-by-site.  Both are
read-only consumers of artifacts other commands produce, so the tests drive
them end-to-end: export a real session, render it; save two reports, diff
them.
"""

import json
import os
from unittest import mock

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import (
    diff_trace_reports,
    render_report_diff,
    render_request_bundle,
    render_top,
)


@pytest.fixture
def export_dir(tmp_path):
    """A directory populated by one real exporting session."""
    directory = tmp_path / "export"
    with mock.patch.dict(os.environ, {
        "REPRO_OBS_EXPORT": str(directory),
        "REPRO_OBS_EXPORT_INTERVAL": "0",
    }):
        assert main(["trace", "--seed", "1"]) == 0
    obs.sync_env()
    return directory


@pytest.fixture
def two_reports(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["trace", "--seed", "1", "--json", str(a)]) == 0
    assert main(["trace", "--seed", "2", "--json", str(b)]) == 0
    return a, b


class TestTopCli:
    def test_renders_a_live_export_directory(self, export_dir, capsys):
        assert main(["top", "--dir", str(export_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert f"pid {os.getpid()}" in out
        assert "actions:" in out
        assert "action.new" in out
        assert "cache hit rates:" in out
        assert "canonical cache" in out
        assert "recent events" in out

    def test_waits_politely_on_an_empty_directory(self, tmp_path, capsys):
        assert main(["top", "--dir", str(tmp_path), "--once"]) == 0
        assert "waiting" in capsys.readouterr().out

    def test_requires_a_directory_from_flag_or_env(self, capsys):
        with mock.patch.dict(os.environ, {"REPRO_OBS_EXPORT": ""}):
            assert main(["top", "--once"]) == 2
        assert "REPRO_OBS_EXPORT" in capsys.readouterr().err

    def test_env_knob_supplies_the_directory(self, export_dir, capsys):
        with mock.patch.dict(
            os.environ, {"REPRO_OBS_EXPORT": str(export_dir)}
        ):
            assert main(["top", "--once"]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_frames_limit_bounds_the_loop(self, export_dir, capsys):
        assert main([
            "top", "--dir", str(export_dir),
            "--frames", "2", "--interval", "0",
        ]) == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_render_top_tolerates_missing_sections(self):
        out = render_top(None, [], directory="/nowhere")
        assert "waiting" in out


class TestTopDegradesAgainstOlderServers:
    """Satellite regression: ``top --server`` / ``postmortem --server``
    against an ``/obs`` payload from an older server — one with no ``slo``
    or ``requests`` section — must label the gaps ``n/a``, not crash."""

    OLD_METRICS = {
        "counters": {"canonical.cache.hits": 3, "canonical.cache.misses": 1},
        "gauges": {},
        "histograms": {"action.new": {
            "count": 2, "sum_s": 0.01, "min_s": 0.001, "max_s": 0.009,
            "p50_s": 0.005, "p90_s": 0.009, "p99_s": 0.009,
        }},
        # note: no "slo" key at all — the pre-SLO payload shape
    }

    def test_missing_slo_section_renders_na(self):
        out = render_top({"metrics": self.OLD_METRICS}, [])
        assert "SLOs (rolling window): n/a" in out
        assert "not reported by this source" in out

    def test_missing_requests_section_renders_na(self):
        out = render_top({"metrics": self.OLD_METRICS}, [], requests=None)
        assert "slowest recent requests: n/a" in out

    def test_an_empty_requests_section_is_silent_not_na(self):
        # distinguish "server reported zero requests" from "server has no
        # requests surface" — only the latter earns the n/a label
        out = render_top({"metrics": self.OLD_METRICS}, [], requests=())
        assert "slowest recent requests" not in out

    def test_request_bundle_without_span_or_event_keys_renders_na(self):
        out = render_request_bundle({
            "request_id": "r-1",
            "request": {"method": "GET", "path": "/v1/x", "status": 200,
                        "duration_ms": 1.5},
            # no "spans"/"events" keys: an older /v1/requests/<id> payload
        })
        assert "correlated spans: n/a" in out
        assert "correlated events: n/a" in out

    def test_malformed_slo_entries_are_skipped_not_fatal(self):
        metrics = dict(self.OLD_METRICS)
        metrics["slo"] = {"action_latency": "bogus-not-a-dict"}
        out = render_top({"metrics": metrics}, [])
        assert "repro top" in out
        assert "bogus-not-a-dict" not in out


class TestTraceDiffCli:
    def test_diff_renders_per_site_and_counter_deltas(self, two_reports,
                                                      capsys):
        a, b = two_reports
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "trace diff:" in out
        assert str(a) in out and str(b) in out
        assert "action.new" in out
        assert "p50" in out and "p99" in out
        assert "counters that changed:" in out
        assert "SRT ledger:" in out

    def test_diff_is_covered_structurally(self, two_reports):
        a, b = two_reports
        report_a = json.loads(a.read_text())
        report_b = json.loads(b.read_text())
        diff = diff_trace_reports(report_a, report_b)
        sites = diff["histograms"]
        assert sites  # both sessions always time their actions
        row = sites["action.new"]
        assert row["count_a"] >= 1 and row["count_b"] >= 1
        for p in (50, 90, 99):
            assert f"p{p}_a_s" in row and f"p{p}_b_s" in row
            assert f"p{p}_delta_s" in row
        assert "counters" in diff and "ledger" in diff

    def test_diff_of_a_report_with_itself_is_quiet(self, two_reports,
                                                   capsys):
        a, _ = two_reports
        assert main(["trace", "--diff", str(a), str(a)]) == 0
        out = capsys.readouterr().out
        assert "counters that changed:" not in out  # nothing changed
        assert "counters: no differences" in out

    def test_new_sites_marked_new_not_divided_by_zero(self, two_reports):
        a, b = two_reports
        report_a = json.loads(a.read_text())
        report_b = json.loads(b.read_text())
        # seed 2 runs a simquery; seed 1 does not — a genuinely new site
        diff = diff_trace_reports(report_a, report_b)
        new_rows = [
            r for r in diff["histograms"].values() if r["count_a"] == 0
        ]
        assert new_rows
        assert all(r["p50_pct"] is None for r in new_rows)

    def test_one_sided_sites_are_marked_and_zero_filled(self):
        """Satellite regression: a site present in only one report is
        treated as zero on the other side and marked ``(new)``/``(gone)``
        instead of crashing or reporting a bogus percentage."""
        hist = {"count": 3, "sum_s": 0.3, "min_s": 0.05, "max_s": 0.15,
                "p50_s": 0.1, "p90_s": 0.15, "p99_s": 0.15}
        report_a = {"metrics": {"histograms": {"action.old": hist},
                                "counters": {}}}
        report_b = {"metrics": {"histograms": {"action.fresh": hist},
                                "counters": {}}}
        diff = diff_trace_reports(report_a, report_b)
        gone = diff["histograms"]["action.old"]
        fresh = diff["histograms"]["action.fresh"]
        assert gone["in_a"] and not gone["in_b"]
        assert not fresh["in_a"] and fresh["in_b"]
        assert gone["count_b"] == 0 and fresh["count_a"] == 0
        # absent side reads as zero, so deltas are well-defined numbers
        assert gone["p50_delta_s"] == pytest.approx(-0.1)
        assert fresh["p50_delta_s"] == pytest.approx(0.1)
        # no percentage fabricated against a missing baseline
        assert gone["p50_pct"] is None and fresh["p50_pct"] is None

        text = render_report_diff(diff, "a.json", "b.json")
        assert "action.old (gone)" in text
        assert "action.fresh (new)" in text

    def test_diff_rejects_non_report_artifacts(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": 2, "kind": "trajectory"}))
        with pytest.raises(ValueError):
            main(["trace", "--diff", str(bogus), str(bogus)])
