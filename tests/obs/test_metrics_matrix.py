"""Metric counters across the hot-path config matrix.

The counters must *tell the truth about which twin ran*: under
``REPRO_BITSET=1`` only the bitset path counter moves, under ``=0`` only the
frozenset one; with a pool (``REPRO_WORKERS=3``) and a large batch the pool
counters move, serially the serial counter does.
"""

import pytest

from repro import obs
from repro.core.verification import verify_batch
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import OracleConfig, applied, replay_trace
from repro.testing import sample_subgraph

CONFIGS = [
    OracleConfig(bitset=bitset, canonical_cache=True, workers=workers)
    for bitset in (True, False)
    for workers in (1, 3)
]


def _ids(config):
    return config.name


@pytest.mark.parametrize("config", CONFIGS, ids=_ids)
class TestPathCountersAcrossMatrix:
    def test_candidate_path_counter_matches_bitset_knob(self, config):
        trace = generate_trace(seed=5)
        with applied(config), obs.trace():
            replay_trace(trace, config)
            counters = obs.full_snapshot()["counters"]
        taken = counters.get("candidates.path.bitset", 0)
        avoided = counters.get("candidates.path.frozenset", 0)
        if config.bitset:
            assert taken > 0 and avoided == 0
        else:
            assert avoided > 0 and taken == 0

    def test_engine_action_counters_cover_the_session(self, config):
        trace = generate_trace(seed=5)
        with applied(config), obs.trace():
            replay_trace(trace, config)
            counters = obs.full_snapshot()["counters"]
        action_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("engine.action.")
        )
        # every engine-processed gesture counts itself exactly once, and a
        # fuzzed trace always ends in at least one run
        assert action_total > 0
        assert counters.get("engine.action.run", 0) >= 1

    def test_counters_identical_across_configs_where_shared(self, config):
        """SPIG construction volume is knob-independent."""
        trace = generate_trace(seed=5)
        reference = OracleConfig(bitset=True, canonical_cache=True, workers=1)
        with applied(reference), obs.trace():
            replay_trace(trace, reference)
            base = obs.full_snapshot()["counters"]
        with applied(config), obs.trace():
            replay_trace(trace, config)
            other = obs.full_snapshot()["counters"]
        assert other.get("spig.vertices.created") == base.get(
            "spig.vertices.created"
        )


class TestVerificationPoolCounters:
    @pytest.fixture(autouse=True)
    def _pool_floor_16(self, monkeypatch):
        # The default REPRO_POOL_MIN_CANDIDATES (64) exceeds the 30-graph
        # corpus; pin it down so the pool-path tests actually pool.
        monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")

    @pytest.fixture
    def batch(self, small_db):
        import random

        pattern = sample_subgraph(random.Random(3), small_db, 2, 3)
        return pattern, list(small_db.ids())  # 30 ids >= the parallel floor

    def test_serial_path_counts_serial(self, batch, small_db):
        pattern, ids = batch
        with obs.trace():
            result = verify_batch(pattern, ids, small_db, workers=1)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.serial", 0) >= 1
        assert counters.get("verify.pool.runs", 0) == 0
        assert result  # a sampled subgraph matches its source at least

    def test_pool_path_counts_runs_and_chunks(self, batch, small_db):
        pattern, ids = batch
        with obs.trace():
            pooled = verify_batch(pattern, ids, small_db, workers=3)
            counters = obs.full_snapshot()["counters"]
        pool_ran = counters.get("verify.pool.runs", 0) >= 1
        fell_back = counters.get("verify.pool.fallbacks", 0) >= 1
        assert pool_ran
        if not fell_back:
            assert counters.get("verify.pool.chunks", 0) >= 2
        with obs.trace():
            serial = verify_batch(pattern, ids, small_db, workers=1)
        assert pooled == serial

    def test_small_batches_never_touch_the_pool(self, small_db):
        import random

        pattern = sample_subgraph(random.Random(3), small_db, 2, 3)
        with obs.trace():
            verify_batch(pattern, [0, 1, 2], small_db, workers=3)
            counters = obs.full_snapshot()["counters"]
        assert counters.get("verify.pool.runs", 0) == 0
        assert counters.get("verify.serial", 0) >= 1


class TestCanonicalBridge:
    def test_snapshot_merges_canonical_cache_stats(self):
        from repro.graph import canonical
        from repro.testing import small_database

        canonical.clear_cache()
        db = small_database(seed=11, num_graphs=4)
        with obs.trace():
            for g in db:
                canonical.canonical_code(g)
            snapshot = obs.full_snapshot()
        counters = snapshot["counters"]
        total = (
            counters.get("canonical.graph_hits", 0)
            + counters.get("canonical.lru_hits", 0)
            + counters.get("canonical.misses", 0)
        )
        assert total >= len(db)
        assert "canonical.lru_size" in snapshot["gauges"]
