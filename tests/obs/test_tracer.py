"""Span recording: nesting, ordering, attributes, enable/disable modes."""

import os
from unittest import mock

import pytest

from repro import obs
from repro.obs.tracer import _NOOP, Span


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        with obs.trace() as tracer:
            with obs.span("outer"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        (outer,) = tracer.roots
        assert [child.name for child in outer.children] == [
            "inner.a",
            "inner.b",
        ]

    def test_sequential_spans_become_separate_roots(self):
        with obs.trace() as tracer:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]
        assert all(not root.children for root in tracer.roots)

    def test_deep_nesting_preserves_ancestry(self):
        with obs.trace() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
        a = tracer.roots[0]
        assert a.children[0].name == "b"
        assert a.children[0].children[0].name == "c"

    def test_timings_are_monotonic_and_contained(self):
        with obs.trace() as tracer:
            with obs.span("parent"):
                with obs.span("child"):
                    pass
        parent = tracer.roots[0]
        child = parent.children[0]
        assert parent.end_s is not None and child.end_s is not None
        assert parent.start_s <= child.start_s
        assert child.end_s <= parent.end_s
        assert child.duration_seconds >= 0.0
        assert parent.duration_seconds >= child.duration_seconds

    def test_walk_yields_depth_first_preorder(self):
        with obs.trace() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    pass
                with obs.span("c"):
                    pass
        names = [(depth, s.name) for s, depth in tracer.roots[0].walk()]
        assert names == [(0, "a"), (1, "b"), (1, "c")]

    def test_span_count_counts_every_recorded_span(self):
        with obs.trace() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        assert tracer.span_count() == 3

    def test_exception_inside_span_still_closes_it(self):
        with obs.trace() as tracer:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
            with obs.span("after"):
                pass
        assert [root.name for root in tracer.roots] == ["doomed", "after"]
        assert tracer.roots[0].end_s is not None


class TestAttributes:
    def test_constructor_and_set_attrs_merge(self):
        with obs.trace() as tracer:
            with obs.span("s", edge=3) as sp:
                sp.set(status="frequent", rq=7)
        attrs = tracer.roots[0].attrs
        assert attrs == {"edge": 3, "status": "frequent", "rq": 7}

    def test_add_attrs_targets_current_span(self):
        with obs.trace() as tracer:
            with obs.span("s"):
                obs.add_attrs(flag=True)
        assert tracer.roots[0].attrs == {"flag": True}

    def test_to_dict_round_trips_structure(self):
        with obs.trace() as tracer:
            with obs.span("p", k=1):
                with obs.span("q"):
                    pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "p"
        assert d["attrs"] == {"k": 1}
        assert d["children"][0]["name"] == "q"


class TestEnablement:
    def test_disabled_by_default_without_env(self):
        with mock.patch.dict(os.environ, {"REPRO_TRACE": "0"}):
            obs.sync_env()
            try:
                assert obs.TRACER.enabled is False
                assert obs.span("ignored") is _NOOP
            finally:
                obs.sync_env()

    def test_env_enables_at_sync(self):
        with mock.patch.dict(os.environ, {"REPRO_TRACE": "1"}):
            obs.TRACER.reset()
            obs.sync_env()
            try:
                assert obs.TRACER.enabled is True
                with obs.span("seen"):
                    pass
                assert obs.TRACER.roots[0].name == "seen"
            finally:
                obs.TRACER.reset()
        obs.sync_env()

    def test_trace_contextmanager_overrides_env_and_restores(self):
        with mock.patch.dict(os.environ, {"REPRO_TRACE": "0"}):
            obs.sync_env()
            with obs.trace():
                assert obs.TRACER.enabled is True
            obs.sync_env()
            assert obs.TRACER.enabled is False

    def test_disabled_spans_record_nothing(self):
        with mock.patch.dict(os.environ, {"REPRO_TRACE": "0"}):
            obs.TRACER.reset()
            obs.sync_env()
            with obs.span("a"):
                with obs.span("b"):
                    pass
            assert obs.TRACER.roots == []
            assert obs.TRACER.span_count() == 0

    def test_noop_handle_accepts_set(self):
        # instrumented code calls .set(...) unconditionally
        _NOOP.set(edge=1, status="x")  # must not raise
        with _NOOP as sp:
            sp.set(more=True)

    def test_span_standalone_duration(self):
        s = Span("x", {})
        s.end_s = s.start_s + 0.5
        assert s.duration_seconds == pytest.approx(0.5)
