"""The ``python -m repro trace`` subcommand and oracle-trace persistence."""

import json

import pytest

from repro.cli import main
from repro.oracle.fuzzer import generate_trace
from repro.oracle.trace import load_trace, save_trace


class TestTracePersistence:
    def test_save_load_round_trip(self, tmp_path):
        trace = generate_trace(seed=9)
        path = save_trace(trace, tmp_path / "session.json")
        loaded = load_trace(path)
        assert loaded.spec == trace.spec
        assert loaded.sigma == trace.sigma
        assert loaded.seed == trace.seed
        assert loaded.actions == trace.actions

    def test_saved_file_is_plain_json(self, tmp_path):
        trace = generate_trace(seed=9)
        path = save_trace(trace, tmp_path / "session.json")
        payload = json.loads(path.read_text())
        assert payload["spec"]["seed"] == trace.spec.seed
        assert len(payload["actions"]) == len(trace)


class TestTraceCommand:
    def test_seeded_replay_prints_all_sections(self, capsys):
        assert main(["trace", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "spans (" in out
        assert "action.run" in out
        assert "metrics:" in out
        assert "SRT ledger" in out
        assert "end-to-end wall time" in out

    def test_ledger_sums_to_wall_time_within_rounding(self, capsys):
        """The acceptance check: total processing = hidden + SRT, and the
        reconciliation line accounts for the replay's wall time."""
        assert main(["trace", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        # the renderer prints the identity's float slack directly
        assert "slack 0.0" in out
        assert "ledger covers" in out

    def test_replay_from_saved_trace_file(self, tmp_path, capsys):
        trace = generate_trace(seed=5)
        path = save_trace(trace, tmp_path / "t.json")
        assert main(["trace", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans (" in out
        assert str(path.name) in out or "trace" in out

    def test_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["trace", "--seed", "1", "--json", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["spans"], "span tree missing"
        assert any(
            root["name"] == "action.run" for root in payload["spans"]
        )
        assert "counters" in payload["metrics"]
        assert payload["ledger"]["entries"]
        assert payload["wall_seconds"] > 0
        # the ledger's internal identity holds in the exported numbers too
        ledger = payload["ledger"]
        assert ledger["total_processing"] == pytest.approx(
            ledger["hidden_seconds"] + ledger["srt_seconds"]
        )

    def test_min_ms_prunes_spans(self, capsys):
        assert main(["trace", "--seed", "1", "--min-ms", "10000"]) == 0
        out = capsys.readouterr().out
        # nothing in a toy replay takes 10 s; the tree renders empty
        # ("engine.action.*" counters still appear in the metrics section)
        spans_section = out.split("metrics:")[0]
        assert "spig.construct" not in spans_section
        assert "action.run" not in spans_section

    def test_latency_override_reaches_ledger(self, capsys):
        assert main(["trace", "--seed", "1", "--latency", "5"]) == 0
        out = capsys.readouterr().out
        assert "5.00 s" in out
