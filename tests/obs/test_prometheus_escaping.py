"""Prometheus text-format escaping in ``render_prometheus``.

The exposition format reserves ``\\``, ``"`` and newline inside label
values; everything the obs layer puts there is hostile to at least one of
them — dotted metric names ride in labels by design, worker-merged gauges
are namespaced ``<name>.<worker-label>``, and recorder-derived labels can
carry arbitrary text.  A scrape that hits one unescaped quote silently
drops the whole exposition, so these tests pin the escaping and that every
emitted line parses.
"""

import re

from repro.obs.export import _prom_escape, render_prometheus

#: One sample line: metric name, optional {labels}, then a number.
_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_]+="(?:[^"\\]|\\.)*"(,[a-zA-Z_]+="(?:[^"\\]|\\.)*")*\})?'
    r' [-+0-9.eE]+$'
)


def _snapshot(**overrides):
    base = {"counters": {}, "gauges": {}, "histograms": {}, "slo": {}}
    base.update(overrides)
    return base


class TestEscapeHelper:
    def test_backslash_quote_and_newline(self):
        assert _prom_escape('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_backslash_escaped_before_quote_not_after(self):
        # escaping the quote first would double-escape its backslash
        assert _prom_escape('"') == '\\"'
        assert _prom_escape('\\"') == '\\\\\\"'


class TestDottedNamesRideInLabels:
    def test_counter_and_gauge_names_are_labels_not_metric_names(self):
        text = render_prometheus(_snapshot(
            counters={"verify.pool.chunks": 8},
            gauges={"pool.workers": 4},
        ))
        assert 'repro_counter{name="verify.pool.chunks"} 8' in text
        assert 'repro_gauge{name="pool.workers"} 4' in text
        # the dot never leaks into a metric name (illegal there)
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split("{", 1)[0]

    def test_worker_namespaced_gauges_survive(self):
        # merge_worker_delta lands worker gauges as "<name>.<worker-label>"
        text = render_prometheus(_snapshot(
            gauges={"pool.chunk_ids.pid-4242": 17},
        ))
        assert 'repro_gauge{name="pool.chunk_ids.pid-4242"} 17' in text


class TestHostileLabelValues:
    def test_quotes_and_backslashes_in_names_are_escaped(self):
        text = render_prometheus(_snapshot(
            counters={'say."hello"': 1},
            gauges={"win\\path.bytes": 2},
        ))
        assert 'repro_counter{name="say.\\"hello\\""} 1' in text
        assert 'repro_gauge{name="win\\\\path.bytes"} 2' in text

    def test_newlines_never_split_a_sample_line(self):
        text = render_prometheus(_snapshot(
            counters={"multi\nline": 3},
        ))
        assert 'repro_counter{name="multi\\nline"} 3' in text
        assert "multi\nline" not in text

    def test_histogram_sites_and_slo_objectives_are_escaped(self):
        text = render_prometheus(_snapshot(
            histograms={'site"x': {
                "p50_s": 0.1, "p90_s": 0.2, "p99_s": 0.3,
                "sum_s": 1.0, "count": 4,
            }},
            slo={'objective"y': {
                "attainment": 0.5, "burn_rate": 1.5,
            }},
        ))
        assert 'repro_latency_seconds{site="site\\"x",quantile="0.50"}' in text
        assert 'repro_latency_seconds_count{site="site\\"x"} 4' in text
        assert 'repro_slo_attainment{objective="objective\\"y"} 0.5' in text
        assert 'repro_slo_burn_rate{objective="objective\\"y"} 1.5' in text


class TestExpositionParses:
    def test_every_sample_line_matches_the_grammar(self):
        text = render_prometheus(_snapshot(
            counters={"verify.tested": 10, 'odd"name\\1': 1},
            gauges={"proc.rss_bytes": 123456789,
                    "pool.chunk_ids.pid-1": 2},
            histograms={"action.run": {
                "p50_s": 0.01, "p90_s": 0.02, "p99_s": 0.03,
                "sum_s": 0.5, "count": 20,
            }},
            slo={"action_latency": {"attainment": 0.99, "burn_rate": 0.2}},
        ))
        samples = [l for l in text.splitlines()
                   if l and not l.startswith("#")]
        assert samples
        for line in samples:
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"
