"""The continuous profiling plane: sampler, attribution, merge, renderers.

The headline acceptance property rides in
:class:`TestWorkerAttributionEndToEnd`: with ``REPRO_WORKERS=2`` and the
sampler on, one request-scoped slice of the profile contains frames from
*both* the parent process (SPIG construction / candidate maintenance) and
the pooled VF2 workers (merged home through the worker-delta protocol,
prefixed ``worker:<label>;``).  Around it: the sampler lifecycle (env knob,
``force``, the shared no-op scope when off), ``(request_id, action)``
attribution, the memory tier, the collapsed-stack/flamegraph renderers, and
the guarantee that sampling never perturbs answers (differential oracle).
"""

import random
import sys
import time

import pytest

from repro import obs
from repro.core.verification import verify_batch
from repro.datasets import generate_aids_like
from repro.graph.generators import random_connected_subgraph
from repro.obs.profiler import (
    PROFILER,
    Profiler,
    _NOOP,
    folded_lines,
    profile_action,
    profile_block,
    profile_summary,
    render_flamegraph_html,
    top_frames,
)
from repro.obs.requests import request_scope


@pytest.fixture(autouse=True)
def _pristine_profiler():
    """Every test starts and ends with the sampler off and empty."""
    PROFILER.force(None)
    PROFILER.force_mem(None)
    PROFILER.reset()
    yield
    PROFILER.force(None)
    PROFILER.force_mem(None)
    PROFILER.reset()


def _spin(seconds: float) -> int:
    """A hot loop the sampler cannot miss."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1
    return acc


def _wait_for_samples(minimum: int = 1, seconds: float = 5.0) -> None:
    deadline = time.monotonic() + seconds
    while PROFILER.samples < minimum and time.monotonic() < deadline:
        _spin(0.02)


class TestSamplerLifecycle:
    def test_off_by_default_and_scopes_are_the_shared_noop(self):
        assert not PROFILER.enabled
        assert PROFILER.hz == 0.0
        assert profile_action("new") is _NOOP
        assert profile_block("arena.build") is _NOOP

    def test_force_starts_sampling_and_none_stops_it(self):
        PROFILER.force(500.0)
        assert PROFILER.enabled and PROFILER.hz == 500.0
        _wait_for_samples()
        assert PROFILER.samples > 0
        stacks = PROFILER.stacks()
        assert stacks
        # frames are pkg-relative "path:function" labels joined with ";"
        assert any("test_profiler" in folded and "_spin" in folded
                   for folded in stacks)
        PROFILER.force(None)
        assert not PROFILER.enabled
        settled = PROFILER.samples
        _spin(0.05)
        time.sleep(0.05)
        assert PROFILER.samples == settled

    def test_sync_env_picks_up_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_HZ", "125")
        assert PROFILER.sync_env() is True
        assert PROFILER.hz == 125.0
        monkeypatch.delenv("REPRO_PROFILE_HZ")
        assert PROFILER.sync_env() is False
        assert not PROFILER.enabled

    def test_rate_is_clamped_to_the_documented_bound(self):
        PROFILER.force(1e9)
        assert PROFILER.hz == 1000.0
        PROFILER.force(-5)
        assert not PROFILER.enabled

    def test_fold_trims_roots_and_keeps_leaves(self):
        profiler = Profiler()
        profiler.depth = 3

        def leaf():
            return profiler._fold(sys._getframe())

        def mid():
            return leaf()

        folded = mid()
        labels = folded.split(";")
        assert len(labels) == 3
        # deepest (leaf-end) frames survive, root-end frames are trimmed
        assert labels[-1].endswith(":leaf")
        assert labels[-2].endswith(":mid")


class TestAttribution:
    def test_samples_land_in_the_request_and_action_slice(self):
        PROFILER.force(500.0)
        with request_scope("req-42"):
            with profile_action("new"):
                _wait_for_samples()
        profile = PROFILER.collect()
        keys = {(s["request_id"], s["action"]) for s in profile["slices"]}
        assert ("req-42", "new") in keys
        assert PROFILER.slice_for_request("req-42")
        assert PROFILER.slice_for_request("other-request") == {}

    def test_nested_actions_restore_the_outer_scope(self):
        PROFILER.force(500.0)
        with profile_action("outer"):
            with profile_action("inner"):
                _wait_for_samples(1)
            before = {
                s["action"] for s in PROFILER.collect()["slices"]
            }
            start = PROFILER.samples
            _wait_for_samples(start + 1)
        actions = {s["action"] for s in PROFILER.collect()["slices"]}
        assert "inner" in before
        assert "outer" in actions  # post-inner samples re-attribute to outer

    def test_unscoped_samples_keep_a_null_slice(self):
        PROFILER.force(500.0)
        _wait_for_samples()
        profile = PROFILER.collect()
        assert any(
            s["request_id"] is None and s["action"] is None
            for s in profile["slices"]
        )


class TestWorkerMerge:
    def test_merge_prefixes_frames_and_aligns_slice_keys(self):
        delta_profile = {
            "hz": 250.0,
            "samples": 3,
            "slices": [{
                "request_id": "req-9",
                "action": "verify.chunk",
                "stacks": {"repro/core/verification.py:_verify_chunk": 3},
            }],
            "memory": {"action.arena.build": {"top": [], "peak_bytes": 7}},
        }
        PROFILER.merge(delta_profile, source="pid-123")
        merged = PROFILER.slice_for_request("req-9")
        assert merged == {
            "worker:pid-123;repro/core/verification.py:_verify_chunk": 3
        }
        assert PROFILER.samples == 3
        profile = PROFILER.collect()
        assert "action.arena.build.pid-123" in profile["memory"]
        # merging the same delta again accumulates — counts are additive
        PROFILER.merge(delta_profile, source="pid-123")
        assert sum(PROFILER.slice_for_request("req-9").values()) == 6

    def test_merge_tolerates_empty_and_none(self):
        PROFILER.merge(None)
        PROFILER.merge({})
        assert PROFILER.samples == 0


class TestMemoryTier:
    def test_mem_bracket_attributes_allocating_lines(self):
        PROFILER.force_mem(5)
        assert PROFILER.mem_topn == 5
        with profile_block("index.build"):
            hoard = [bytearray(4096) for _ in range(200)]
        assert hoard
        memory = PROFILER.collect()["memory"]
        assert "action.index.build" in memory
        bracket = memory["action.index.build"]
        assert bracket["peak_bytes"] > 0
        assert len(bracket["top"]) <= 5
        assert any(
            entry["size_diff_bytes"] > 0 for entry in bracket["top"]
        )
        assert PROFILER.tracemalloc_peak_bytes() > 0

    def test_memory_tier_off_means_no_tracemalloc_brackets(self):
        with profile_action("new"):
            pass
        assert PROFILER.collect()["memory"] == {}


class TestRenderers:
    STACKS = {
        "a.py:main;a.py:hot": 6,
        "a.py:main;b.py:cold": 2,
        "a.py:main": 1,
    }

    def test_folded_lines_are_flamegraph_pl_input(self):
        lines = folded_lines(self.STACKS)
        assert lines[0] == "a.py:main;a.py:hot 6"
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_top_frames_attribute_self_samples_to_leaves(self):
        top = top_frames(self.STACKS, 2)
        assert top[0] == ("a.py:hot", 6)
        # "a.py:main" gets only its own leaf sample, not its children's
        assert ("a.py:main", 1) not in top[:1]

    def test_flamegraph_is_self_contained_and_escaped(self):
        stacks = {'x.py:<listcomp>;y.py:f"quote': 5}
        html = render_flamegraph_html(stacks, title="t <&> q")
        assert html.startswith("<!DOCTYPE html>") and "</html>" in html
        assert "<script" not in html  # pure HTML/CSS artifact
        assert "&lt;listcomp&gt;" in html
        assert "t &lt;&amp;&gt; q" in html
        assert "<listcomp>" not in html

    def test_flamegraph_survives_zero_samples(self):
        html = render_flamegraph_html({})
        assert "no samples" in html

    def test_profile_summary_is_compact_and_sorted(self):
        profile = {
            "hz": 50.0,
            "samples": 9,
            "slices": [
                {"request_id": None, "action": None,
                 "stacks": {"a.py:main": 1}},
                {"request_id": "r1", "action": "run",
                 "stacks": {"a.py:main;a.py:hot": 8}},
            ],
            "memory": {"action.run": {}},
        }
        summary = profile_summary(profile, top=3)
        assert summary["hz"] == 50.0 and summary["samples"] == 9
        assert summary["top_frames"][0] == {
            "frame": "a.py:hot", "self_samples": 8,
        }
        assert summary["slices"][0]["request_id"] == "r1"  # busiest first
        assert summary["memory_sites"] == ["action.run"]


class TestMemoryGauges:
    def test_full_snapshot_carries_process_memory_gauges(self):
        snapshot = obs.full_snapshot()
        gauges = snapshot["gauges"]
        assert gauges["proc.rss_bytes"] > 0
        assert gauges["arena.segment_bytes"] >= 0
        assert gauges["tracemalloc.peak_bytes"] >= 0


class TestWorkerAttributionEndToEnd:
    """The acceptance check: one request-scoped profile slice holds parent
    *and* pool-worker frames after a ``REPRO_WORKERS=2`` session."""

    def test_request_slice_spans_parent_and_pool_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_CANDIDATES", "16")
        from repro.oracle.corpus import corpus_for
        from repro.oracle.fuzzer import generate_trace
        from repro.oracle.trace import apply_action
        from repro.core.prague import PragueEngine

        trace = generate_trace(seed=11)  # SPIG-heavy formulation session
        oracle_corpus = corpus_for(trace.spec)
        corpus = generate_aids_like(60, seed=7)  # chunky enough to sample
        rng = random.Random(2012)
        while True:
            g = corpus[rng.randrange(len(corpus))]
            query = random_connected_subgraph(rng, g, min(4, g.num_edges))
            if query is not None:
                break
        ids = list(corpus.ids())

        PROFILER.force(1000.0)
        parent = worker = ()
        with obs.trace():
            with request_scope("prof-e2e"):
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    engine = PragueEngine(
                        oracle_corpus.db, oracle_corpus.indexes,
                        sigma=trace.sigma,
                    )
                    for action in trace.actions:
                        apply_action(engine, action)
                    verify_batch(query, ids, corpus, workers=2)
                    profile_slice = PROFILER.slice_for_request("prof-e2e")
                    parent = [
                        f for f in profile_slice
                        if not f.startswith("worker:")
                        and ("spig/construct" in f or "core/candidates" in f)
                    ]
                    worker = [
                        f for f in profile_slice
                        if f.startswith("worker:")
                        and "core/verification" in f
                    ]
                    if parent and worker:
                        break
            counters = obs.full_snapshot()["counters"]
        PROFILER.force(None)
        if counters.get("verify.pool.fallbacks", 0):
            pytest.skip("pool unavailable on this platform")
        assert parent, "no parent-side frames attributed to the request"
        assert worker, "no merged pool-worker frames in the request slice"
        # the same slice renders through the request-bundle surface
        from repro.obs.export import render_request_bundle

        text = render_request_bundle({
            "request_id": "prof-e2e",
            "profile": PROFILER.slice_for_request("prof-e2e"),
        })
        assert "profile slice" in text


class TestProfileCli:
    def test_profile_command_writes_all_three_artifacts(
        self, tmp_path, capsys
    ):
        import json

        from repro.cli import main
        from repro.obs.export import open_envelope

        out_dir = tmp_path / "prof"
        code = main([
            "profile", "--seed", "1", "--hz", "250",
            "--seconds", "0.5", "--out", str(out_dir),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "replays" in stdout
        assert "hottest frames" in stdout

        folded = (out_dir / "profile.folded").read_text().splitlines()
        assert folded and all(
            line.rsplit(" ", 1)[1].isdigit() for line in folded if line
        )
        assert any("repro/" in line for line in folded)

        payload = json.loads((out_dir / "profile.json").read_text())
        open_envelope(payload, expect_kind="profile")
        assert payload["profile"]["samples"] > 0
        assert payload["summary"]["top_frames"]
        assert payload["replays"] >= 1

        html = (out_dir / "flamegraph.html").read_text()
        assert html.startswith("<!DOCTYPE html>") and "</html>" in html
        # the sampler is back off once the command returns
        assert not PROFILER.enabled

    def test_profile_command_memory_tier(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "prof-mem"
        code = main([
            "profile", "--seed", "1", "--hz", "100", "--mem", "5",
            "--seconds", "0.3", "--out", str(out_dir),
        ])
        assert code == 0
        assert "memory brackets" in capsys.readouterr().out


class TestSamplerDoesNotPerturbAnswers:
    def test_oracle_observations_identical_with_sampler_on(self):
        from repro.oracle.diff import first_divergence
        from repro.oracle.fuzzer import generate_trace
        from repro.oracle.replay import OracleConfig, replay_trace

        trace = generate_trace(seed=9)
        baseline = replay_trace(trace, OracleConfig())
        PROFILER.force(800.0)
        try:
            sampled = replay_trace(trace, OracleConfig())
        finally:
            PROFILER.force(None)
        divergence = first_divergence(
            baseline.observations, sampled.observations,
            "sampler-off", "sampler-on",
        )
        assert divergence is None
