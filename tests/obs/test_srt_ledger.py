"""SRT ledger arithmetic and its parity with the session/GUI layers."""

import math
import random

import pytest

from repro.core import PragueEngine, QuerySpec, formulate
from repro.datasets import spec_from_graph
from repro.gui import SimulatedUser, UserProfile, VisualInterface
from repro.obs.srt import build_ledger, events_from_reports
from repro.testing import sample_subgraph


class TestBuildLedger:
    def test_empty_session_is_pure_run(self):
        ledger = build_ledger([], run_seconds=0.25)
        assert ledger.entries == ()
        assert ledger.backlog_before_run == 0.0
        assert ledger.srt_seconds == 0.25
        assert ledger.hidden_seconds == 0.0
        assert ledger.total_processing == 0.25

    def test_fold_matches_hand_computation(self):
        events = [
            ("new e1", 0.4, 2.0),   # fits entirely: hidden 0.4, backlog 0
            ("new e2", 2.5, 2.0),   # 0.5 spills over
            ("modify", 0.1, 0.0),   # dialogue: zero cover, backlog grows
            ("new e3", 0.2, 2.0),   # 0.8 pending, all hidden
        ]
        ledger = build_ledger(events, run_seconds=0.3)
        rows = ledger.entries
        assert [r.hidden_seconds for r in rows] == pytest.approx(
            [0.4, 2.0, 0.0, 0.8]
        )
        assert [r.backlog_after for r in rows] == pytest.approx(
            [0.0, 0.5, 0.6, 0.0]
        )
        assert ledger.backlog_before_run == pytest.approx(0.0)
        assert ledger.srt_seconds == pytest.approx(0.3)

    def test_invariant_total_equals_hidden_plus_srt(self):
        rng = random.Random(0)
        for _ in range(50):
            events = [
                ("e", rng.uniform(0, 3), rng.uniform(0, 3))
                for _ in range(rng.randrange(0, 12))
            ]
            ledger = build_ledger(events, run_seconds=rng.uniform(0, 1))
            assert abs(ledger.residual_error()) < 1e-9

    def test_backlog_never_negative(self):
        events = [("e", 0.1, 5.0), ("e", 0.1, 5.0)]
        ledger = build_ledger(events, run_seconds=0.0)
        assert all(row.backlog_after >= 0.0 for row in ledger.entries)
        assert ledger.backlog_before_run == 0.0

    def test_scalar_latency_override(self):
        events = [("e", 1.0, 99.0), ("e", 1.0, 99.0)]
        ledger = build_ledger(events, run_seconds=0.0, latency=0.5)
        assert all(
            row.latency_seconds == 0.5 for row in ledger.entries
        )
        assert ledger.backlog_before_run == pytest.approx(1.0)

    def test_sequence_latency_override(self):
        events = [("a", 1.0, 0.0), ("b", 1.0, 0.0)]
        ledger = build_ledger(events, run_seconds=0.0, latency=[2.0, 0.0])
        assert ledger.entries[0].hidden_seconds == pytest.approx(1.0)
        assert ledger.entries[1].backlog_after == pytest.approx(1.0)

    def test_to_dict_is_json_ready(self):
        import json

        ledger = build_ledger([("new e1", 0.4, 2.0)], run_seconds=0.1)
        payload = json.loads(json.dumps(ledger.to_dict()))
        assert payload["entries"][0]["action"] == "new e1"
        assert payload["srt_seconds"] == pytest.approx(0.1)


class TestEventsFromReports:
    def test_labels_carry_action_and_edge(self, small_db, small_indexes):
        engine = PragueEngine(small_db, small_indexes, sigma=2)
        engine.add_node("a", "A")
        engine.add_node("b", "B")
        reports = [engine.add_edge("a", "b")]
        events = events_from_reports(reports, latency=2.0)
        assert len(events) == 1
        label, processing, latency = events[0]
        assert label == f"New e{reports[0].edge_id}"
        assert processing == reports[0].processing_seconds
        assert latency == 2.0


class TestLayerParity:
    """The scalar SRT fields the session/GUI layers expose are the
    ledger's own folds — refactoring them onto the ledger must not have
    changed a single number."""

    @pytest.fixture
    def spec(self, small_db):
        q = sample_subgraph(random.Random(1), small_db, 3, 4)
        return spec_from_graph("ledger-parity", q)

    def test_formulate_scalars_are_ledger_folds(
        self, spec, small_db, small_indexes
    ):
        engine = PragueEngine(small_db, small_indexes, sigma=2)
        trace = formulate(engine, spec, edge_latency=2.0)
        assert trace.ledger is not None
        assert trace.backlog_before_run == trace.ledger.backlog_before_run
        assert trace.srt_seconds == trace.ledger.srt_seconds
        assert trace.ledger.run_seconds == trace.run_report.processing_seconds
        assert len(trace.ledger.entries) == len(trace.step_reports)
        # total engine work is conserved through the decomposition
        assert math.isclose(
            trace.ledger.total_processing,
            trace.total_step_processing + trace.run_report.processing_seconds,
        )

    def test_simulator_scalars_are_ledger_folds(
        self, spec, small_db, small_indexes
    ):
        interface = VisualInterface()
        interface.open_database(small_db, small_indexes, sigma=2)
        user = SimulatedUser(UserProfile(seed=4))
        sim = user.formulate(interface, spec)
        assert sim.ledger is not None
        assert sim.backlog_before_run == sim.ledger.backlog_before_run
        assert sim.srt_seconds == sim.ledger.srt_seconds
        drawn = [
            row for row in sim.ledger.entries if row.action.startswith("new e")
        ]
        assert [row.latency_seconds for row in drawn] == sim.edge_latencies
        # dialogue rows (if any) offer zero cover
        for row in sim.ledger.entries:
            if not row.action.startswith("new e"):
                assert row.latency_seconds == 0.0
