"""The mergeable-snapshot protocol: cross-process merges lose nothing.

Every obs registry that travels back from a verification worker —
histograms, counters, gauges, the flight-recorder ring — must merge into
the parent *exactly*: a merged histogram is indistinguishable from one that
observed the concatenated sample stream (same buckets ⇒ bucket-wise sum ⇒
same exact-rank percentiles), counters are sums of sums, gauges carry their
worker's provenance label, and recorder events interleave by timestamp.
"""

import random

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI always has hypothesis
    HAVE_HYPOTHESIS = False

from repro.obs.histogram import (
    HISTOGRAMS,
    Histogram,
    merge_histograms,
    reset_histograms,
    snapshot_histograms,
)
from repro.obs.metrics import Metrics
from repro.obs.recorder import FlightRecorder

#: Sample space spanning the histogram's six decades (100 ns .. ~200 s).
_samples = None
if HAVE_HYPOTHESIS:
    _samples = st.lists(
        st.floats(min_value=0.0, max_value=250.0,
                  allow_nan=False, allow_infinity=False),
        max_size=60,
    )


def _observe_all(name, values):
    h = Histogram(name)
    for v in values:
        h.record(v)
    return h


class TestHistogramMergeIsExact:
    @pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
    @settings(max_examples=60, deadline=None)
    @given(left=_samples, right=_samples)
    def test_merge_equals_observing_the_concatenation(self, left, right):
        """merge(snapshot(B)) into A ≡ one histogram that saw A's and B's
        samples — identical count/sum/min/max/buckets, hence identical
        exact-rank percentiles.  This is the property the cross-process
        worker merge rests on."""
        a = _observe_all("a", left)
        b = _observe_all("b", right)
        a.merge_snapshot(b.snapshot())

        ref = _observe_all("ref", left + right)
        assert a.count == ref.count
        assert a.sum == pytest.approx(ref.sum)
        assert a.max == ref.max
        if ref.count:
            assert a.min == ref.min
        assert a.snapshot()["buckets"] == ref.snapshot()["buckets"]
        for p in (50, 90, 99):
            if ref.count:
                assert a.percentile(p) == ref.percentile(p)

    def test_merge_is_order_independent(self):
        rng = random.Random(7)
        streams = [[rng.uniform(0, 2) for _ in range(20)] for _ in range(3)]
        forward = Histogram("f")
        backward = Histogram("b")
        for s in streams:
            forward.merge_snapshot(_observe_all("x", s).snapshot())
        for s in reversed(streams):
            backward.merge_snapshot(_observe_all("x", s).snapshot())
        assert forward.snapshot() == backward.snapshot()

    def test_empty_snapshot_is_a_no_op(self):
        h = _observe_all("h", [0.001, 0.002])
        before = h.snapshot()
        h.merge_snapshot(Histogram("empty").snapshot())
        assert h.snapshot() == before

    def test_registry_merge_creates_missing_sites(self):
        reset_histograms()
        try:
            worker = _observe_all("verify.candidate", [0.01, 0.02, 0.5])
            merge_histograms({"verify.candidate": worker.snapshot()})
            assert HISTOGRAMS["verify.candidate"].count == 3
            # a second worker's delta folds into the now-existing site
            merge_histograms({"verify.candidate": worker.snapshot()})
            assert HISTOGRAMS["verify.candidate"].count == 6
        finally:
            reset_histograms()

    def test_snapshot_histograms_skips_empty_sites(self):
        reset_histograms()
        try:
            Histogram("never.recorded")  # not registered, and empty anyway
            HISTOGRAMS["empty.site"] = Histogram("empty.site")
            HISTOGRAMS["busy.site"] = _observe_all("busy.site", [0.1])
            snaps = snapshot_histograms()
            assert list(snaps) == ["busy.site"]
        finally:
            reset_histograms()


class TestMetricsMerge:
    def test_counters_sum_exactly(self):
        parent, w1, w2 = Metrics(), Metrics(), Metrics()
        parent.inc("verify.tested", 10)
        w1.inc("verify.tested", 7)
        w2.inc("verify.tested", 5)
        w2.inc("verify.pool.chunks", 2)
        parent.merge(w1.snapshot(), source="w1")
        parent.merge(w2.snapshot(), source="w2")
        assert parent.counter("verify.tested") == 22
        assert parent.counter("verify.pool.chunks") == 2

    def test_gauges_namespaced_by_source_never_overwrite(self):
        parent, worker = Metrics(), Metrics()
        parent.set_gauge("rq.size", 100)
        worker.set_gauge("rq.size", 3)
        parent.merge(worker.snapshot(), source="pid-42")
        gauges = parent.snapshot()["gauges"]
        assert gauges["rq.size"] == 100  # parent's value untouched
        assert gauges["rq.size.pid-42"] == 3

    def test_merge_without_source_overwrites_gauges(self):
        parent, other = Metrics(), Metrics()
        parent.set_gauge("rq.size", 1)
        other.set_gauge("rq.size", 9)
        parent.merge(other.snapshot())
        assert parent.snapshot()["gauges"]["rq.size"] == 9


class TestRecorderMerge:
    def _ring(self, size=16):
        r = FlightRecorder(size=size)
        r.force(True)
        return r

    def test_events_interleave_by_timestamp_with_provenance(self):
        parent = self._ring()
        parent.record("action.start", op="run")
        parent.record("action.end", op="run")
        events = parent.snapshot()
        # a worker event that happened *between* the parent's two
        worker_event = {
            "seq": 1,
            "t_s": (events[0]["t_s"] + events[1]["t_s"]) / 2,
            "kind": "pool.chunk",
            "hits": 4,
        }
        parent.merge([worker_event], source="pid-9")
        merged = parent.snapshot()
        assert [e["kind"] for e in merged] == [
            "action.start", "pool.chunk", "action.end",
        ]
        assert merged[1]["src"] == "pid-9"
        assert "src" not in merged[0]  # parent events stay unlabelled
        assert [e["seq"] for e in merged] == [1, 2, 3]  # renumbered, dense

    def test_merge_respects_the_ring_bound(self):
        parent = self._ring(size=4)
        for _ in range(4):
            parent.record("parent.event")
        base = parent.snapshot()[-1]["t_s"]
        incoming = [
            {"seq": i, "t_s": base + 1 + i, "kind": "worker.event"}
            for i in range(3)
        ]
        parent.merge(incoming, source="w")
        merged = parent.snapshot()
        assert len(merged) == 4  # bound holds: oldest parent events dropped
        assert [e["kind"] for e in merged] == [
            "parent.event", "worker.event", "worker.event", "worker.event",
        ]
        assert merged[-1]["seq"] == 7  # 4 recorded + 3 merged

    def test_merge_noop_when_disabled_or_empty(self):
        parent = self._ring()
        parent.record("only.event")
        parent.merge([], source="w")
        assert len(parent.snapshot()) == 1
        parent.force(False)
        parent.merge([{"seq": 1, "t_s": 0.0, "kind": "x"}], source="w")
        parent.force(True)
        assert len(parent.snapshot()) == 1

    def test_merge_does_not_mutate_the_caller_events(self):
        parent = self._ring()
        parent.record("anchor")
        original = {"seq": 5, "t_s": 0.0, "kind": "worker.event"}
        parent.merge([original], source="w")
        assert original == {"seq": 5, "t_s": 0.0, "kind": "worker.event"}
