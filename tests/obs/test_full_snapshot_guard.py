"""``full_snapshot()`` shape guard: the canonical bridge never mis-shapes.

Consumers (the trace CLI, exporters, dashboards) index the ``canonical.*``
keys unconditionally, so the section must stay well-formed — present and
numeric — whether the LRU tier is enabled, disabled via
``REPRO_CANONICAL_CACHE=0``, or the stats source misbehaves entirely.
"""

import os
from unittest import mock

from repro.graph import canonical
from repro.obs.metrics import full_snapshot

BRIDGE_COUNTERS = ("canonical.graph_hits", "canonical.lru_hits",
                   "canonical.misses")


def _assert_well_formed(snapshot):
    for key in BRIDGE_COUNTERS:
        assert key in snapshot["counters"], key
        assert isinstance(snapshot["counters"][key], (int, float)), key
    assert isinstance(snapshot["gauges"]["canonical.lru_size"], (int, float))
    assert isinstance(snapshot["histograms"], dict)


def test_snapshot_well_formed_with_cache_enabled():
    _assert_well_formed(full_snapshot())


def test_snapshot_well_formed_with_cache_disabled():
    with mock.patch.dict(os.environ, {"REPRO_CANONICAL_CACHE": "0"}):
        canonical.clear_cache()
        _assert_well_formed(full_snapshot())
    canonical.clear_cache()


def test_snapshot_survives_a_misshapen_stats_source():
    for bad in (None, [], {"size": "huge", "misses": object()}):
        with mock.patch.object(canonical, "cache_stats", lambda b=bad: b):
            snapshot = full_snapshot()
        _assert_well_formed(snapshot)
        assert snapshot["gauges"]["canonical.lru_size"] == 0
