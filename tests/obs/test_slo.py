"""The SLO engine and the request ring: math, shapes, and rendering.

The attainment/burn-rate math is property-tested against a brute-force
reference over seeded synthetic sample streams (the tracker takes explicit
``t``/``now`` precisely so these tests need no clock control), the request
ring's bounded/last-wins/ordering contracts are pinned, and the surfacing
paths — ``full_snapshot()``'s ``slo`` section, the Prometheus gauge
families, ``render_top``'s SLO/slowest-requests sections and the
postmortem bundle renderer — are exercised on real shapes.
"""

import random

import pytest

from repro import obs
from repro.obs.export import (
    render_prometheus,
    render_request_bundle,
    render_top,
)
from repro.obs.requests import RequestLog, request_scope
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLO,
    SloObjective,
    SloTracker,
    record_action_latency,
    record_admission,
    record_request,
)


def _brute_attainment(samples, window, now):
    live = [(t, good) for t, good in samples if t >= now - window]
    if not live:
        return None
    return sum(1 for _, good in live if good) / len(live)


def _brute_burn(samples, window, now, target):
    attainment = _brute_attainment(samples, window, now)
    budget = 1.0 - target
    if attainment is None or budget <= 0.0:
        return None
    return (1.0 - attainment) / budget


class TestSloMathAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_attainment_and_burn_match_reference(self, seed):
        """Seeded random sample streams: the tracker's windowed attainment
        and burn rate equal the brute-force fold at every probe point."""
        rng = random.Random(seed)
        window = rng.uniform(1.0, 100.0)
        target = rng.choice([0.9, 0.99, 0.999])
        tracker = SloTracker(
            objectives=(SloObjective("probe", "synthetic", target),),
            window_s=window,
        )
        t = 0.0
        probe_now = 0.0
        samples = []
        for _ in range(rng.randrange(1, 400)):
            t += rng.uniform(0.0, window / 10.0)
            good = rng.random() < 0.9
            samples.append((t, good))
            tracker.record("probe", good, t=t)
            # Probing mid-stream must not disturb later answers — provided
            # ``now`` never goes backwards (the pruning a probe triggers
            # only drops samples already outside every later window).
            if rng.random() < 0.2:
                probe_now = max(probe_now, t + rng.uniform(0.0, window / 4.0))
                expected = _brute_attainment(samples, window, probe_now)
                assert tracker.attainment("probe", now=probe_now) == expected
        now = max(probe_now, t + rng.uniform(0.0, window))
        assert tracker.attainment("probe", now=now) == \
            _brute_attainment(samples, window, now)
        expected_burn = _brute_burn(samples, window, now, target)
        got_burn = tracker.burn_rate("probe", now=now)
        if expected_burn is None:
            assert got_burn is None
        else:
            assert got_burn == pytest.approx(expected_burn)

    def test_everything_aged_out_means_no_samples(self):
        tracker = SloTracker(
            objectives=(SloObjective("probe", "synthetic", 0.99),),
            window_s=10.0,
        )
        for t in (0.0, 1.0, 2.0):
            tracker.record("probe", True, t=t)
        assert tracker.attainment("probe", now=100.0) is None
        assert tracker.burn_rate("probe", now=100.0) is None

    def test_perfect_target_has_no_budget_to_burn(self):
        tracker = SloTracker(
            objectives=(SloObjective("probe", "synthetic", 1.0),),
            window_s=10.0,
        )
        tracker.record("probe", False, t=1.0)
        assert tracker.attainment("probe", now=1.0) == 0.0
        assert tracker.burn_rate("probe", now=1.0) is None

    def test_unknown_objective_is_ignored(self):
        tracker = SloTracker(window_s=10.0)
        tracker.record("nonexistent", True, t=1.0)  # must not raise
        assert tracker.attainment("nonexistent") is None
        assert tracker.burn_rate("nonexistent") is None


class TestSnapshotShape:
    def test_snapshot_carries_every_objective_with_the_full_shape(self):
        tracker = SloTracker(window_s=60.0)
        tracker.record("action_latency", True, t=1.0)
        tracker.record("action_latency", False, t=2.0)
        snap = tracker.snapshot(now=2.0)
        assert set(snap) == {o.name for o in DEFAULT_OBJECTIVES}
        state = snap["action_latency"]
        assert set(state) == {
            "description", "objective", "window_s", "samples", "good",
            "bad", "attainment", "burn_rate", "budget_remaining", "met",
        }
        assert state["samples"] == 2
        assert state["good"] == 1
        assert state["bad"] == 1
        assert state["attainment"] == 0.5
        assert state["burn_rate"] == pytest.approx(0.5 / 0.01)
        assert state["met"] is False
        # Objectives without samples surface as None, not zero.
        assert snap["admission"]["attainment"] is None
        assert snap["admission"]["met"] is None

    def test_full_snapshot_includes_the_slo_section(self):
        with obs.trace():
            snapshot = obs.full_snapshot()
        assert set(snapshot["slo"]) == {o.name for o in DEFAULT_OBJECTIVES}


class TestSingletonFeeds:
    @pytest.fixture(autouse=True)
    def _clean_slo(self):
        SLO.reset()
        yield
        SLO.reset()

    def test_record_action_latency_judges_against_the_gui_window(self):
        record_action_latency(0.05)
        record_action_latency(5.0)  # above the 2 s default window
        snap = SLO.snapshot()["action_latency"]
        assert (snap["good"], snap["bad"]) == (1, 1)

    def test_record_request_spares_admission_rejections(self):
        for status in (200, 404, 503):
            record_request(status)
        record_request(500)
        snap = SLO.snapshot()["request_errors"]
        assert (snap["good"], snap["bad"]) == (3, 1)

    def test_record_admission(self):
        record_admission(True)
        record_admission(False)
        snap = SLO.snapshot()["admission"]
        assert (snap["good"], snap["bad"]) == (1, 1)


class TestRequestLog:
    def test_ring_is_bounded_and_evicts_oldest(self):
        log = RequestLog(size=4)
        for i in range(10):
            log.record(f"r{i}", "GET", "/x", 200, 0.001)
        assert len(log) == 4
        assert [e["request_id"] for e in log.recent(10)] == \
            ["r6", "r7", "r8", "r9"]
        assert log.get("r0") is None

    def test_replayed_id_overwrites_last_wins(self):
        log = RequestLog(size=8)
        log.record("dup", "GET", "/first", 200, 0.001)
        log.record("other", "GET", "/other", 200, 0.001)
        log.record("dup", "GET", "/second", 500, 0.002)
        assert len(log) == 2
        entry = log.get("dup")
        assert entry["path"] == "/second"
        assert entry["status"] == 500
        # the overwrite also moved it to the newest slot
        assert log.recent(1)[0]["request_id"] == "dup"

    def test_slowest_orders_by_duration_then_recency(self):
        log = RequestLog(size=8)
        log.record("fast", "GET", "/a", 200, 0.001)
        log.record("slow", "POST", "/b", 200, 0.5)
        log.record("mid", "GET", "/c", 200, 0.1)
        assert [e["request_id"] for e in log.slowest(2)] == ["slow", "mid"]

    def test_for_session_filters_and_bounds(self):
        log = RequestLog(size=16)
        for i in range(6):
            log.record(f"r{i}", "POST", "/act", 200, 0.01,
                       session_id="s1" if i % 2 == 0 else "s2")
        mine = log.for_session("s1", limit=2)
        assert [e["request_id"] for e in mine] == ["r2", "r4"]
        assert all(e["session"] == "s1" for e in mine)


class TestRequestScopeStamping:
    def test_recorder_events_inside_a_scope_carry_the_id(self):
        from repro.obs.recorder import RECORDER

        RECORDER.force(True)
        RECORDER.reset()
        try:
            with request_scope("req-abc"):
                RECORDER.record("probe.inside", x=1)
            RECORDER.record("probe.outside", x=2)
            events = {e["kind"]: e for e in RECORDER.snapshot()}
        finally:
            RECORDER.force(None)
            RECORDER.reset()
        assert events["probe.inside"]["request_id"] == "req-abc"
        assert "request_id" not in events["probe.outside"]

    def test_root_spans_inside_a_scope_carry_the_id(self):
        with obs.trace() as tracer:
            with request_scope("req-span"):
                with obs.span("outer"):
                    with obs.span("inner"):
                        pass
        root = tracer.roots[-1]
        assert root.attrs["request_id"] == "req-span"
        assert "request_id" not in root.children[0].attrs


class TestRendering:
    def _snapshot_with_slo(self):
        tracker = SloTracker(window_s=60.0)
        for _ in range(99):
            tracker.record("action_latency", True, t=1.0)
        tracker.record("action_latency", False, t=1.0)
        return {
            "counters": {}, "gauges": {}, "histograms": {},
            "slo": tracker.snapshot(now=1.0),
        }

    def test_prometheus_emits_slo_gauge_families(self):
        text = render_prometheus(self._snapshot_with_slo())
        assert '# TYPE repro_slo_attainment gauge' in text
        assert 'repro_slo_attainment{objective="action_latency"} 0.99' \
            in text
        assert 'repro_slo_burn_rate{objective="action_latency"} 1.0' in text
        # objectives without samples emit nothing (no NaN series)
        assert 'objective="admission"' not in text

    def test_render_top_shows_slo_and_slowest_requests(self):
        bundle = {
            "pid": 42, "sequence": 1, "events_emitted": 0,
            "metrics": self._snapshot_with_slo(),
        }
        requests = [{
            "request_id": "deadbeef", "method": "POST",
            "path": "/v1/sessions/s1/actions", "status": 200,
            "duration_ms": 12.5, "session": "s1",
        }]
        frame = render_top(bundle, (), directory="http://host:1",
                           requests=requests)
        assert "SLOs (rolling window):" in frame
        assert "action_latency" in frame
        assert "99.00%" in frame
        assert "slowest recent requests" in frame
        assert "id=deadbeef" in frame

    def test_render_top_waiting_message_is_url_aware(self):
        frame = render_top(None, (), directory="http://host:8765")
        assert "http://host:8765/obs" in frame
        assert "is the server up?" in frame

    def test_render_request_bundle_lists_spans_and_events(self):
        data = {
            "request_id": "cafe1234",
            "request": {
                "request_id": "cafe1234", "method": "POST",
                "path": "/v1/sessions/s1/actions", "status": 200,
                "duration_ms": 34.5, "session": "s1",
            },
            "events": [
                {"kind": "service.request", "seq": 9, "t_s": 10.0,
                 "request_id": "cafe1234", "status": 200},
                {"kind": "pool.chunk", "seq": 8, "t_s": 10.5,
                 "request_id": "cafe1234", "src": "pid-77"},
            ],
            "spans": [{
                "name": "service.action", "seconds": 0.030,
                "attrs": {"request_id": "cafe1234", "op": "run"},
                "children": [{
                    "name": "engine.run", "seconds": 0.025,
                    "attrs": {}, "children": [],
                }],
            }],
        }
        text = render_request_bundle(data)
        assert "request cafe1234" in text
        assert "correlated spans (1 roots):" in text
        assert "service.action" in text
        assert "engine.run" in text
        assert "correlated events (2):" in text
        assert "pool.chunk" in text
        assert "src=pid-77" in text

    def test_render_request_bundle_with_nothing_correlated(self):
        text = render_request_bundle({"request_id": "x", "request": None,
                                      "events": [], "spans": []})
        assert "request x" in text
        assert "nothing correlated" in text
