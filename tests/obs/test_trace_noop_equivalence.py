"""Tracing must never change answers.

The observability layer is read-only by design: the same fuzzed session,
replayed with ``REPRO_TRACE=0`` and ``REPRO_TRACE=1``, must produce
byte-identical step observations through the differential-oracle differ.
"""

import os
from unittest import mock

import pytest

from repro import obs
from repro.oracle.diff import first_divergence
from repro.oracle.fuzzer import generate_trace
from repro.oracle.replay import REFERENCE_CONFIG, replay_trace


def _observations(trace, trace_env):
    with mock.patch.dict(os.environ, {"REPRO_TRACE": trace_env}):
        obs.sync_env()
        obs.TRACER.reset()
        obs.METRICS.reset()
        try:
            session = replay_trace(trace, REFERENCE_CONFIG)
        finally:
            pass
    obs.sync_env()
    return session.observations


@pytest.mark.parametrize("seed", [0, 3, 11, 42])
def test_traced_replay_observations_identical(seed):
    trace = generate_trace(seed=seed)
    untraced = _observations(trace, "0")
    traced = _observations(trace, "1")
    divergence = first_divergence(
        untraced, traced, left="REPRO_TRACE=0", right="REPRO_TRACE=1", kind="obs"
    )
    assert divergence is None
    assert len(untraced) == len(traced) == len(trace)


def test_traced_replay_actually_recorded_spans():
    """Guard the guard: the traced leg really had tracing on."""
    trace = generate_trace(seed=3)
    with mock.patch.dict(os.environ, {"REPRO_TRACE": "1"}):
        obs.sync_env()
        obs.TRACER.reset()
        replay_trace(trace, REFERENCE_CONFIG)
        recorded = obs.TRACER.span_count()
    obs.sync_env()
    obs.TRACER.reset()
    assert recorded > 0


def test_programmatic_trace_block_is_also_neutral():
    trace = generate_trace(seed=7)
    baseline = replay_trace(trace, REFERENCE_CONFIG).observations
    with obs.trace():
        traced = replay_trace(trace, REFERENCE_CONFIG).observations
    assert (
        first_divergence(baseline, traced, left="plain", right="obs.trace")
        is None
    )
