"""``obs.trace(reset=True)`` must be exception-safe.

The context manager force-enables tracing for a block; if the block raises,
it must (a) restore the tracer's prior enabled/override state and (b) never
leave a half-reset span stack behind — an open span surviving the block
would silently reparent every span of the *next* traced block under a dead
ancestor.
"""

import os
from unittest import mock

import pytest

from repro import obs
from repro.config import trace_enabled
from repro.obs.tracer import TRACER, span


@pytest.fixture(autouse=True)
def _clean_tracer():
    TRACER.force(None)
    TRACER.reset()
    yield
    TRACER.force(None)
    TRACER.reset()


def test_exception_restores_prior_enabled_state():
    with mock.patch.dict(os.environ, {"REPRO_TRACE": "0"}):
        TRACER.sync_env()
        with pytest.raises(RuntimeError):
            with obs.trace():
                raise RuntimeError("boom")
        assert TRACER._override is None
        assert TRACER.enabled == trace_enabled()
        assert TRACER.enabled is False


def test_exception_does_not_leave_open_spans_on_the_stack():
    """The regression: a span open at the moment of the raise used to stay
    on the tracer's stack after ``trace()`` unwound."""
    with pytest.raises(ValueError):
        with obs.trace() as tracer:
            handle = span("leaky")
            handle.__enter__()  # opened, never exited: the raise skips it
            raise ValueError("boom")
    assert tracer.current() is None, "span stack must be empty after trace()"
    assert tracer._stack == []


def test_exception_closes_the_abandoned_spans():
    with pytest.raises(ValueError):
        with obs.trace() as tracer:
            outer = span("outer")
            outer.__enter__()
            inner = span("inner")
            inner.__enter__()
            raise ValueError("boom")
    # Both spans were closed (given an end time) during the unwind.
    for root in tracer.roots:
        for s, _depth in root.walk():
            assert s.end_s is not None, f"span {s.name!r} left open"


def test_next_trace_block_is_not_reparented_under_a_leaked_span():
    with pytest.raises(ValueError):
        with obs.trace():
            span("leaky").__enter__()
            raise ValueError("boom")
    with obs.trace(reset=False) as tracer:
        with span("fresh"):
            pass
    names = [root.name for root in tracer.roots]
    assert "fresh" in names, (
        "the post-exception span must be a root, not a child of the leak"
    )


def test_nested_trace_blocks_unwind_to_their_own_depth():
    with obs.trace() as tracer:
        with span("outer"):
            with pytest.raises(KeyError):
                with obs.trace(reset=False):
                    span("abandoned").__enter__()
                    raise KeyError("boom")
            # The outer block's span context is intact after the inner raise.
            assert tracer.current() is not None
            assert tracer.current().name == "outer"
    assert tracer._stack == []


def test_happy_path_unchanged():
    with obs.trace() as tracer:
        with span("a"):
            with span("b"):
                pass
    assert tracer.span_count() == 2
    assert tracer._stack == []
