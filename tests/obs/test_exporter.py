"""The continuous exporter: live files, cached knob parsing, worker safety.

``REPRO_OBS_EXPORT`` turns a session into a streamed one: every recorder
event appends to ``events.jsonl`` and the metrics snapshot lands in
``metrics.prom``/``snapshot.json`` at most once per interval.  These tests
pin the file formats (schema-v2 envelopes, Prometheus text exposition), the
raw-string caching of ``sync_env`` (the satellite bugfix — export off must
cost two env probes, not a parse), and worker suspension.
"""

import json
import os
from unittest import mock

import pytest

from repro import obs
from repro.obs.exporter import EXPORTER, ContinuousExporter


@pytest.fixture
def exporter(tmp_path):
    """A fresh (non-singleton) exporter pointed at a temp directory."""
    with mock.patch.dict(os.environ, {
        "REPRO_OBS_EXPORT": str(tmp_path),
        "REPRO_OBS_EXPORT_INTERVAL": "0",
    }):
        yield ContinuousExporter(), tmp_path


class TestStreaming:
    def test_events_stream_as_enveloped_jsonl(self, exporter):
        exp, directory = exporter
        assert exp.active
        exp.emit({"seq": 1, "t_s": 0.25, "kind": "action.start", "op": "new"})
        exp.emit({"seq": 2, "t_s": 0.50, "kind": "action.end", "op": "new"})
        lines = (directory / "events.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["schema"] == 2
        assert first["kind"] == "obs-event"  # envelope kind survives
        assert first["event"] == "action.start"  # the recorder kind rides here
        assert first["op"] == "new"
        assert exp.events_emitted == 2

    def test_tick_writes_prometheus_and_snapshot_atomically(self, exporter):
        exp, directory = exporter
        path = exp.tick(force=True)
        assert path == directory / "snapshot.json"
        snap = json.loads(path.read_text())
        assert snap["schema"] == 2
        assert snap["kind"] == "metrics-snapshot"
        assert snap["pid"] == os.getpid()
        assert snap["sequence"] == 1
        assert {"counters", "gauges", "histograms"} <= set(snap["metrics"])
        prom = (directory / "metrics.prom").read_text()
        assert "# TYPE repro_counter counter" in prom
        assert "# TYPE repro_latency_seconds summary" in prom
        assert not list(directory.glob(".*.tmp"))  # no temp litter

    def test_tick_exports_profiles_when_the_sampler_has_samples(
        self, exporter
    ):
        from repro.obs.profiler import PROFILER

        exp, directory = exporter
        PROFILER.reset()
        PROFILER.force(200.0)
        try:
            PROFILER.merge({
                "hz": 200.0, "samples": 4,
                "slices": [{"request_id": None, "action": "run",
                            "stacks": {"a.py:main;a.py:hot": 4}}],
                "memory": {},
            })
            exp.tick(force=True)
        finally:
            PROFILER.force(None)
        folded = (directory / "profiles" / "profile.folded").read_text()
        assert "a.py:main;a.py:hot 4" in folded
        payload = json.loads(
            (directory / "profiles" / "profile.json").read_text()
        )
        assert payload["kind"] == "profile"
        assert payload["summary"]["samples"] == 4
        assert not list((directory / "profiles").glob(".*.tmp"))
        PROFILER.reset()

    def test_tick_skips_profiles_while_the_sampler_is_off(self, exporter):
        exp, directory = exporter
        exp.tick(force=True)
        assert not (directory / "profiles").exists()

    def test_interval_gates_snapshot_rewrites(self, tmp_path):
        with mock.patch.dict(os.environ, {
            "REPRO_OBS_EXPORT": str(tmp_path),
            "REPRO_OBS_EXPORT_INTERVAL": "3600",
        }):
            exp = ContinuousExporter()
        assert exp.tick() is not None  # first tick always writes
        assert exp.tick() is None      # next one waits for the interval
        assert exp.tick(force=True) is not None
        assert exp.snapshots_written == 2

    def test_inactive_without_the_knob(self):
        with mock.patch.dict(os.environ, {"REPRO_OBS_EXPORT": ""}):
            exp = ContinuousExporter()
        assert not exp.active
        assert exp.tick(force=True) is None
        exp.emit({"kind": "x"})  # must not raise, must not open files
        assert exp.events_emitted == 0


class TestSyncEnvCaching:
    def test_unchanged_env_never_reparses(self, exporter):
        exp, _ = exporter
        with mock.patch.object(
            exp, "_configure", wraps=exp._configure
        ) as configure:
            for _ in range(5):
                assert exp.sync_env() is True
        configure.assert_not_called()

    def test_changed_dir_reconfigures_once(self, exporter, tmp_path):
        exp, _ = exporter
        other = tmp_path / "elsewhere"
        os.environ["REPRO_OBS_EXPORT"] = str(other)
        assert exp.sync_env() is True
        assert other.is_dir()  # reconfigure created the new target
        with mock.patch.object(
            exp, "_configure", wraps=exp._configure
        ) as configure:
            exp.sync_env()
        configure.assert_not_called()

    def test_clearing_the_knob_deactivates(self, exporter):
        exp, _ = exporter
        exp.emit({"seq": 1, "t_s": 0.0, "kind": "x"})
        os.environ["REPRO_OBS_EXPORT"] = ""
        assert exp.sync_env() is False
        assert not exp.active

    def test_interval_reparses_only_on_change(self, exporter):
        exp, _ = exporter
        assert exp._interval == 0.0
        os.environ["REPRO_OBS_EXPORT_INTERVAL"] = "2.5"
        exp.sync_env()
        assert exp._interval == 2.5


class TestWorkerSuspension:
    def test_suspend_is_permanent_and_quiet(self, exporter):
        exp, directory = exporter
        exp.suspend()
        assert not exp.active
        exp.emit({"seq": 1, "t_s": 0.0, "kind": "x"})
        assert not (directory / "events.jsonl").exists()
        # even a sync_env that re-reads an exporting env stays suspended
        assert exp.sync_env() is False
        os.environ["REPRO_OBS_EXPORT"] = str(directory / "sub")
        assert exp.sync_env() is False

    def test_suspend_does_not_close_the_parents_handle(self, exporter):
        exp, directory = exporter
        exp.emit({"seq": 1, "t_s": 0.0, "kind": "x"})
        handle = exp._events_file
        assert handle is not None
        exp.suspend()
        assert not handle.closed  # the fd belongs to the parent on fork


class TestGlobalWiring:
    def test_session_streams_through_the_singleton(self, tmp_path):
        """End-to-end: a traced CLI session with the knob set leaves all
        three export files behind, and replays (the oracle isolation patch)
        never pollute the stream."""
        from repro.cli import main

        with mock.patch.dict(os.environ, {
            "REPRO_OBS_EXPORT": str(tmp_path),
            "REPRO_OBS_EXPORT_INTERVAL": "0",
        }):
            assert main(["trace", "--seed", "1"]) == 0
        # restore the singleton to the (knob-less) ambient environment
        assert obs.sync_env() is not None
        assert not EXPORTER.active
        assert (tmp_path / "events.jsonl").stat().st_size > 0
        assert (tmp_path / "metrics.prom").stat().st_size > 0
        snap = json.loads((tmp_path / "snapshot.json").read_text())
        assert snap["kind"] == "metrics-snapshot"
        for line in (tmp_path / "events.jsonl").read_text().splitlines():
            assert json.loads(line)["kind"] == "obs-event"

    def test_oracle_replays_are_isolated_from_export(self, tmp_path):
        from repro.oracle.replay import REFERENCE_CONFIG, applied

        with mock.patch.dict(os.environ, {
            "REPRO_OBS_EXPORT": str(tmp_path),
        }):
            with applied(REFERENCE_CONFIG):
                assert os.environ["REPRO_OBS_EXPORT"] == ""
            assert os.environ["REPRO_OBS_EXPORT"] == str(tmp_path)
