"""Interactive query modification: the option dialogue and edge suggestions.

Reproduces the Section VII experience end to end through the headless GUI:
the user draws a query whose candidate set empties mid-formulation, PRAGUE
pops the option dialogue, recommends which edge to delete (the one restoring
the most candidates), and the modification completes in effectively zero
time — contrasted against GBLENDER's full replay.

Run with:  python examples/interactive_modification.py
"""

import random

from repro import MiningParams, build_indexes, generate_aids_like
from repro.baselines import GBlenderEngine
from repro.datasets import sample_similarity_query
from repro.gui import VisualInterface


def main() -> None:
    db = generate_aids_like(400, seed=23)
    indexes = build_indexes(db, MiningParams(0.1, 4, 7))

    interface = VisualInterface()
    interface.open_database(db, indexes, sigma=2)
    print(f"Panel 2 (label palette): {interface.palette.labels()}\n")

    rng = random.Random(5)
    workload = sample_similarity_query(db, indexes, rng, num_edges=6, sigma=2)
    assert workload is not None
    spec = workload.spec

    canvas = interface.canvas
    node_ids = {n: canvas.drop_node(label) for n, label in spec.nodes.items()}
    drawn = []
    for u, v in spec.edges:
        if interface.pending_dialogue:
            break
        report = canvas.draw_edge(node_ids[u], node_ids[v])
        drawn.append(report.edge_id)
        print(f"stroke e{report.edge_id}: status={report.status.value:10s} "
              f"|Rq|={report.rq_size}")

    assert interface.pending_dialogue, "expected the option dialogue"
    print("\n>>> option dialogue: no molecule matches the sketch any more.")
    suggestion = interface.dialogue_suggestion()
    assert suggestion is not None
    print(f">>> PRAGUE suggests deleting e{suggestion.edge_id} "
          f"(restores {len(suggestion.candidates)} candidates)")

    report = interface.answer_modify()  # accept the suggestion
    print(f">>> deleted e{report.edge_id} in "
          f"{report.processing_seconds * 1000:.2f} ms; "
          f"|Rq| is back to {report.rq_size}\n")

    run = interface.run()
    print(f"Run: {len(run.results.exact_ids)} exact matches in "
          f"{run.processing_seconds * 1000:.2f} ms")

    # The same modification on GBLENDER requires replaying every stroke.
    gblender = GBlenderEngine(db, indexes)
    for n, label in spec.nodes.items():
        gblender.add_node(n, label)
    for u, v in spec.edges[: len(drawn)]:
        gblender.add_edge(u, v, spec.edge_labels.get((u, v)))
    replay_seconds = gblender.delete_edge(suggestion.edge_id)
    print(f"\nGBLENDER replay for the same deletion: "
          f"{replay_seconds * 1000:.2f} ms "
          f"(vs PRAGUE's {report.processing_seconds * 1000:.2f} ms)")


if __name__ == "__main__":
    main()
