"""Drug-discovery scenario: substructure *similarity* search while drawing.

A chemist sketches a scaffold that turns out not to exist in the compound
library.  Instead of an empty answer (GBLENDER's behaviour), PRAGUE keeps
processing while she draws and delivers distance-ranked approximate matches
the moment she presses Run.  For contrast, the same query is answered by the
traditional Grafil pipeline, which starts only at Run time.

Run with:  python examples/drug_discovery.py
"""

import random

from repro import MiningParams, PragueEngine, build_indexes, generate_aids_like
from repro.baselines import FeatureIndex, GBlenderEngine, GrafilSearch
from repro.core import formulate
from repro.datasets import sample_similarity_query

SIGMA = 2  # allow up to two missing bonds


def main() -> None:
    db = generate_aids_like(400, seed=11)
    indexes = build_indexes(db, MiningParams(0.1, 4, 7))
    print(f"compound library: {len(db)} molecules; "
          f"{len(indexes.frequent)} frequent fragments, {len(indexes.difs)} DIFs\n")

    # A realistic "no exact hit" sketch: a real substructure extended by one
    # plausible bond that pushes it out of the library.
    rng = random.Random(3)
    workload = sample_similarity_query(db, indexes, rng, num_edges=6, sigma=SIGMA)
    assert workload is not None, "could not synthesise a no-hit sketch"
    spec = workload.spec
    print(f"sketch: {spec.size} bonds; the candidate set provably empties at "
          f"stroke {workload.empty_step} (the paper's 'bold edge')\n")

    # --- PRAGUE: blended formulation + processing --------------------------
    engine = PragueEngine(db, indexes, sigma=SIGMA)
    trace = formulate(engine, spec, edge_latency=2.0)
    print("PRAGUE (blended):")
    print(f"  work done during drawing : {trace.total_step_processing * 1000:.1f} ms"
          f" (hidden inside {trace.formulation_seconds:.0f} s of GUI latency)")
    print(f"  SRT felt at Run          : {trace.srt_seconds * 1000:.1f} ms")
    print("  top matches (by missing-bond count):")
    for match in trace.results.similar[:5]:
        print(f"    molecule {match.graph_id}: {match.distance} bond(s) missing"
              f"{'  [no verification needed]' if match.verification_free else ''}")

    # --- GBLENDER: blended but exact-only ----------------------------------
    gblender = GBlenderEngine(db, indexes)
    for node, label in spec.nodes.items():
        gblender.add_node(node, label)
    for u, v in spec.edges:
        gblender.add_edge(u, v, spec.edge_labels.get((u, v)))
    results, _ = gblender.run()
    print(f"\nGBLENDER (exact-only predecessor): {results!r} "
          "<- empty result set, the limitation PRAGUE removes")

    # --- Grafil: traditional paradigm --------------------------------------
    grafil = GrafilSearch(db, FeatureIndex(db, indexes.frequent, 4))
    outcome = grafil.search(spec.graph(), SIGMA)
    print(f"\nGrafil (traditional): same {len(outcome.matches)} matches, but "
          f"everything happens after Run: SRT = {outcome.total_seconds * 1000:.1f} ms "
          f"({outcome.candidate_count} candidates verified)")


if __name__ == "__main__":
    main()
