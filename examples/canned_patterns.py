"""Canned patterns: composing queries from domain motifs (footnote 1).

The paper's GUI is edge-at-a-time; footnote 1 anticipates a domain-dependent
interface where whole motifs — "e.g., benzene ring" — are drag-and-dropped.
This example drops a benzene ring on the canvas, fuses a thioether bridge
onto it, and shows that the engine still processed everything edge-at-a-time
under the hood (one SPIG per edge), so blending, the option dialogue and
modification keep working.

Run with:  python examples/canned_patterns.py
"""

from repro import MiningParams, build_indexes, generate_aids_like
from repro.core.statistics import collect_statistics
from repro.gui import VisualInterface, pattern_library_for
from repro.render import results_to_text


def main() -> None:
    db = generate_aids_like(300, seed=41)
    indexes = build_indexes(db, MiningParams(0.1, 4, 7))

    interface = VisualInterface()
    interface.open_database(db, indexes, sigma=2)
    canvas = interface.canvas

    library = pattern_library_for(db)
    print("pattern palette:", ", ".join(p.name for p in library))
    benzene = next(p for p in library if p.name == "benzene ring")
    thioether = next(p for p in library if p.name == "thioether bridge")

    print(f"\ndropping '{benzene.name}' ({benzene.size} bonds)...")
    reports = canvas.drop_pattern(benzene, position=(100, 100))
    for report in reports:
        print(f"  e{report.edge_id}: {report.status.value} "
              f"|Rq|={report.rq_size}")

    # Fuse the thioether bridge onto one ring carbon (pattern node 0 -> the
    # first canvas carbon).
    anchor = next(iter(canvas.nodes))
    print(f"\nfusing '{thioether.name}' onto canvas node {anchor}...")
    reports = canvas.drop_pattern(
        thioether, position=(200, 100), attach={0: anchor}
    )
    for report in reports:
        print(f"  e{report.edge_id}: {report.status.value} "
              f"|Rq|={report.rq_size}")

    if interface.pending_dialogue:
        print("\nno exact match remains — continuing as similarity query")
        interface.answer_similarity()

    run = interface.run()
    print(f"\nRun ({run.processing_seconds * 1000:.2f} ms):")
    print(results_to_text(run.results, db, limit=5))

    print("\nunder the hood (still edge-at-a-time):")
    for line in collect_statistics(interface.engine).summary_lines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
