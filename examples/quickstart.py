"""Quickstart: blended visual subgraph querying in ~60 lines.

Builds a small molecule-like database, mines the action-aware indexes, then
plays a user drawing a query edge by edge — watching PRAGUE refine the
candidate answers after every stroke — and finally presses Run.

Run with:  python examples/quickstart.py
"""

from repro import MiningParams, PragueEngine, build_indexes, generate_aids_like

def main() -> None:
    # 1. A database of 200 molecule-like graphs (the paper uses the AIDS
    #    Antiviral corpus; this generator reproduces its shape).
    db = generate_aids_like(200, seed=7)
    print(f"database: {db.stats()}")

    # 2. Offline preprocessing: mine frequent fragments and DIFs, build the
    #    A2F/A2I action-aware indexes (Section III).
    indexes = build_indexes(db, MiningParams(min_support=0.1,
                                             size_threshold=4,
                                             max_fragment_edges=6))
    print(f"indexes: {len(indexes.frequent)} frequent fragments, "
          f"{len(indexes.difs)} DIFs")

    # 3. Online: the user formulates a query edge at a time.  Every add_edge
    #    call is what the GUI triggers while the user is still drawing.
    engine = PragueEngine(db, indexes, sigma=2)
    for node, atom in [("a", "C"), ("b", "C"), ("c", "O"), ("d", "N")]:
        engine.add_node(node, atom)

    for u, v in [("a", "b"), ("b", "c"), ("b", "d")]:
        report = engine.add_edge(u, v)
        print(f"drew {u}-{v}: status={report.status.value:10s} "
              f"candidates={report.rq_size if report.rq_size is not None else report.candidate_count}")

    # 4. The Run click: only the not-yet-done work is left (that is the SRT).
    run = engine.run()
    print(f"\nRun finished in {run.processing_seconds * 1000:.2f} ms "
          f"(verification-free: {run.verification_free})")
    if run.results.exact_ids:
        print(f"exact matches: {run.results.exact_ids[:10]}"
              f"{' ...' if len(run.results.exact_ids) > 10 else ''} "
              f"({len(run.results.exact_ids)} total)")
    else:
        print("no exact match; closest approximate matches:")
        for match in run.results.similar[:5]:
            print(f"  graph {match.graph_id}: missing {match.distance} edge(s)"
                  f"{'  [verification-free]' if match.verification_free else ''}")


if __name__ == "__main__":
    main()
