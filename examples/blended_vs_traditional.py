"""Blended vs traditional paradigm: the system-response-time experiment.

Simulates the paper's participant panel (Section VIII-A): eight virtual
volunteers each formulate the same similarity queries five times (first
reading discarded).  PRAGUE processes during the drawing latency; Grafil and
SIGMA start from scratch when Run is pressed.  The printed table is the
paper's headline SRT comparison in miniature.

Run with:  python examples/blended_vs_traditional.py
"""

from repro import MiningParams, build_indexes, generate_aids_like
from repro.baselines import FeatureIndex, GrafilSearch, SigmaSearch
from repro.datasets import standard_similarity_workload
from repro.gui import VisualInterface, average_srt, participant_panel

SIGMA = 2


def main() -> None:
    db = generate_aids_like(400, seed=31)
    indexes = build_indexes(db, MiningParams(0.1, 4, 7))
    workload = standard_similarity_workload(
        db, indexes, num_edges=6, sigma=SIGMA, pool_size=12, num_queries=3
    )
    feature_index = FeatureIndex(db, indexes.frequent, max_feature_edges=4)
    traditional = {
        "Grafil": GrafilSearch(db, feature_index),
        "SIGMA": SigmaSearch(db, feature_index),
    }

    def interface_factory():
        iface = VisualInterface()
        iface.open_database(db, indexes, sigma=SIGMA)
        return iface

    users = participant_panel(count=8, seed=2012)
    print(f"{'query':8s} {'PRAGUE SRT':>12s} {'Grafil SRT':>12s} {'SIGMA SRT':>12s}")
    for name, wq in workload.items():
        prague_srt = average_srt(
            interface_factory, wq.spec, users, repetitions=3
        )
        query = wq.spec.graph()
        row = [f"{prague_srt * 1000:11.2f}ms"]
        for system in traditional.values():
            outcome = system.search(query, SIGMA)
            row.append(f"{outcome.total_seconds * 1000:11.2f}ms")
        print(f"{name:8s} {row[0]} {row[1]} {row[2]}")
    print("\nPRAGUE's per-step work rides inside the >= 2 s the user spends "
          "drawing each edge; the traditional systems pay everything at Run.")


if __name__ == "__main__":
    main()
